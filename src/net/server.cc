#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/command.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/session_manager.h"
#include "serve/wire.h"

namespace visclean {

namespace {

Status Errno(const char* what) {
  // strerror is not thread-safe (clang-tidy concurrency-mt-unsafe); the
  // numeric errno is enough for diagnostics.
  return Status::IoError(std::string(what) + " failed, errno " +
                         std::to_string(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// One decoded input waiting its turn on a connection: either a request to
/// execute, or an already-serialized response (parse/decode errors answer
/// in arrival order without occupying a worker).
struct PendingItem {
  bool ready = false;
  WireRequest request;
  std::string response_bytes;
  // Telemetry timestamps (0 when obs is compiled out): the frame/line
  // decode interval measured on the IO thread, and when the item joined
  // the connection queue. They become retro child spans of the request.
  uint64_t decode_start_ns = 0;
  uint64_t decode_end_ns = 0;
  uint64_t enqueue_ns = 0;
};

struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}

  const int fd;
  enum class Mode { kUnknown, kBinary, kText };
  /// Written once by the IO thread before any request is dispatched; the
  /// dispatch queue's mutex publishes it to the workers.
  Mode mode = Mode::kUnknown;
  /// Negotiated wire version: pinned to the first binary frame's version
  /// and echoed in every response on this connection. Same publication
  /// discipline as `mode`.
  uint8_t version = kWireVersion;
  bool version_pinned = false;  ///< IO thread only

  // Read side: IO thread only, no lock.
  std::string in;
  bool peer_eof = false;

  // Shared between the IO thread and workers.
  std::mutex mu;
  std::string out;                ///< serialized responses awaiting send
  std::deque<PendingItem> queue;  ///< decoded inputs not yet executing
  bool busy = false;              ///< one request dispatched/executing
  bool closing = false;           ///< close once queue + out drain
  bool dead = false;              ///< fd closed; workers discard output
};

using ConnPtr = std::shared_ptr<Connection>;

/// One request handed to the worker pool, with its queue provenance.
struct DispatchItem {
  ConnPtr conn;
  WireRequest request;
  uint64_t decode_start_ns = 0;
  uint64_t decode_end_ns = 0;
  uint64_t enqueue_ns = 0;
};

}  // namespace

struct VisCleanServer::Impl {
  Impl(SessionManager& manager_in, ServerOptions options_in)
      : owned_handler(std::make_unique<SessionManagerHandler>(manager_in)),
        handler(*owned_handler),
        options(options_in) {
    InitMetrics();
  }
  Impl(WireHandler& handler_in, ServerOptions options_in)
      : handler(handler_in), options(options_in) {
    InitMetrics();
  }

  void InitMetrics() {
    registry = options.registry != nullptr ? options.registry
                                           : &obs::Registry::Default();
    c_bytes_read = registry->GetCounter("net.bytes_read");
    c_bytes_written = registry->GetCounter("net.bytes_written");
    c_requests = registry->GetCounter("net.requests");
    g_open_conns = registry->GetGauge("net.open_connections");
    h_dispatch_wait_ns = registry->GetHistogram("net.dispatch_wait_ns");
    h_decode_ns = registry->GetHistogram("net.decode_ns");
    h_handle_ns = registry->GetHistogram("net.handle_ns");
  }

  std::unique_ptr<SessionManagerHandler> owned_handler;
  WireHandler& handler;
  ServerOptions options;

  obs::Registry* registry = nullptr;
  obs::Counter* c_bytes_read = nullptr;
  obs::Counter* c_bytes_written = nullptr;
  obs::Counter* c_requests = nullptr;
  obs::Gauge* g_open_conns = nullptr;
  obs::Histogram* h_dispatch_wait_ns = nullptr;  ///< enqueue -> worker pickup
  obs::Histogram* h_decode_ns = nullptr;         ///< frame/line decode time
  obs::Histogram* h_handle_ns = nullptr;         ///< WireHandler::Handle time

  int listen_fd = -1;
  uint16_t bound_port = 0;
  int wake_r = -1;
  int wake_w = -1;
  bool started = false;

  std::thread io_thread;
  std::vector<std::thread> workers;
  std::atomic<bool> stop_flag{false};

  mutable std::mutex conns_mu;
  std::vector<ConnPtr> conns;

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<DispatchItem> dispatch;
  bool workers_stop = false;

  void Wake() {
    char byte = 0;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    (void)!write(wake_w, &byte, 1);
  }

  std::string Serialize(const ConnPtr& conn, const WireResponse& response) {
    return conn->mode == Connection::Mode::kBinary
               ? EncodeResponse(response, conn->version)
               : PrintResponseLine(response) + "\n";
  }

  /// Flushes leading ready items and dispatches the next request if the
  /// connection is idle. The per-connection FIFO lives here: at most one
  /// request per connection is ever in the dispatch queue.
  void Advance(const ConnPtr& conn) {
    DispatchItem next;
    bool enqueue = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      while (!conn->busy && !conn->queue.empty()) {
        PendingItem& front = conn->queue.front();
        if (front.ready) {
          if (!conn->dead) conn->out += front.response_bytes;
          conn->queue.pop_front();
          continue;
        }
        next.conn = conn;
        next.request = std::move(front.request);
        next.decode_start_ns = front.decode_start_ns;
        next.decode_end_ns = front.decode_end_ns;
        next.enqueue_ns = front.enqueue_ns;
        conn->queue.pop_front();
        conn->busy = true;
        enqueue = true;
        break;
      }
    }
    if (enqueue) {
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        dispatch.push_back(std::move(next));
      }
      queue_cv.notify_one();
    }
  }

  void EnqueueRequest(const ConnPtr& conn, WireRequest request,
                      uint64_t decode_start_ns = 0,
                      uint64_t decode_end_ns = 0) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      PendingItem item;
      item.request = std::move(request);
      item.decode_start_ns = decode_start_ns;
      item.decode_end_ns = decode_end_ns;
#ifndef VISCLEAN_OBS_OFF
      item.enqueue_ns = obs::MonotonicNs();
#endif
      conn->queue.push_back(std::move(item));
    }
    Advance(conn);
  }

  void EnqueueReady(const ConnPtr& conn, std::string bytes) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      PendingItem item;
      item.ready = true;
      item.response_bytes = std::move(bytes);
      conn->queue.push_back(std::move(item));
    }
    Advance(conn);
  }

  void WorkerLoop() {
    for (;;) {
      DispatchItem item;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock,
                      [this] { return workers_stop || !dispatch.empty(); });
        if (dispatch.empty()) return;  // only when workers_stop
        item = std::move(dispatch.front());
        dispatch.pop_front();
      }
      const ConnPtr& conn = item.conn;
      c_requests->Add(1);
      WireResponse response;
      {
#ifndef VISCLEAN_OBS_OFF
        uint64_t start_ns = obs::MonotonicNs();
        if (item.enqueue_ns != 0) {
          h_dispatch_wait_ns->Record(start_ns - item.enqueue_ns);
        }
        // Root span of this request — or, for a kForwarded envelope carrying
        // a router-side trace, a child joined into it (the originator keeps
        // completion/capture ownership). Decode + queue wait happened before
        // this scope existed, so they attach as retro children.
        obs::RequestTrace rt(
            obs::Tracer::Default(),
            std::string("net.") + WireRequestTypeName(item.request.type),
            item.request.trace_id, item.request.parent_span);
        if (item.decode_end_ns > item.decode_start_ns) {
          rt.RecordChild("net.decode", item.decode_start_ns,
                         item.decode_end_ns);
        }
        if (item.enqueue_ns != 0) {
          rt.RecordChild("net.queue", item.enqueue_ns, start_ns);
        }
        response = handler.Handle(item.request);
        h_handle_ns->Record(obs::MonotonicNs() - start_ns);
#else
        response = handler.Handle(item.request);
#endif
      }
      std::string bytes = Serialize(conn, response);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead) conn->out += bytes;
        conn->busy = false;
      }
      Advance(conn);
      Wake();  // the IO thread re-polls with POLLOUT armed
    }
  }

  void ParseBinary(const ConnPtr& conn) {
    for (;;) {
      std::string payload;
      uint8_t frame_version = 0;
      FrameStatus fs = NextFrame(conn->in, &payload, &frame_version);
      if (fs == FrameStatus::kNeedMore) break;
      if (fs == FrameStatus::kBad) {
        // One error frame, then hang up: a corrupt length-prefixed stream
        // cannot be resynchronized.
        WireResponse err = ErrorResponse(
            0, Status::InvalidArgument("malformed VCWP frame"));
        EnqueueReady(conn, EncodeResponse(err, conn->version));
        conn->peer_eof = true;  // stop reading
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        break;
      }
      if (!conn->version_pinned) {
        // Pin the connection to the version of its first frame; later
        // frames may not change it (mixed-version pipelining would make
        // response framing ambiguous).
        conn->version = frame_version;
        conn->version_pinned = true;
      } else if (frame_version != conn->version) {
        WireResponse err = ErrorResponse(
            0, Status::InvalidArgument(
                   "wire version changed mid-connection"));
        EnqueueReady(conn, EncodeResponse(err, conn->version));
        conn->peer_eof = true;
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        break;
      }
      uint64_t decode_start_ns = 0;
      uint64_t decode_end_ns = 0;
#ifndef VISCLEAN_OBS_OFF
      decode_start_ns = obs::MonotonicNs();
#endif
      Result<WireRequest> request =
          DecodeRequestPayload(payload, conn->version);
#ifndef VISCLEAN_OBS_OFF
      decode_end_ns = obs::MonotonicNs();
      h_decode_ns->Record(decode_end_ns - decode_start_ns);
#endif
      if (!request.ok()) {
        EnqueueReady(conn, EncodeResponse(ErrorResponse(0, request.status()),
                                          conn->version));
      } else {
        EnqueueRequest(conn, std::move(request).value(), decode_start_ns,
                       decode_end_ns);
      }
    }
  }

  void ParseText(const ConnPtr& conn) {
    for (;;) {
      size_t nl = conn->in.find('\n');
      std::string line;
      if (nl == std::string::npos) {
        // A final unterminated line is still a command once the peer shuts
        // down its write side.
        if (!conn->peer_eof || conn->in.empty()) break;
        line = std::move(conn->in);
        conn->in.clear();
      } else {
        line = conn->in.substr(0, nl);
        conn->in.erase(0, nl + 1);
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      bool blank = true;
      for (char c : line) {
        if (c != ' ' && c != '\t') blank = false;
      }
      if (blank) continue;
      uint64_t decode_start_ns = 0;
      uint64_t decode_end_ns = 0;
#ifndef VISCLEAN_OBS_OFF
      decode_start_ns = obs::MonotonicNs();
#endif
      Result<WireRequest> request = ParseCommand(line);
#ifndef VISCLEAN_OBS_OFF
      decode_end_ns = obs::MonotonicNs();
      h_decode_ns->Record(decode_end_ns - decode_start_ns);
#endif
      if (!request.ok()) {
        WireResponse err = ErrorResponse(0, request.status());
        EnqueueReady(conn, PrintResponseLine(err) + "\n");
      } else {
        EnqueueRequest(conn, std::move(request).value(), decode_start_ns,
                       decode_end_ns);
      }
    }
  }

  void ParseInput(const ConnPtr& conn) {
    if (conn->mode == Connection::Mode::kUnknown) {
      const size_t have = conn->in.size() < 4 ? conn->in.size() : 4;
      if (std::memcmp(conn->in.data(), kWireMagic, have) == 0 && have < 4) {
        // A strict prefix of the magic: need more bytes to pick a mode,
        // unless the peer already hung up (then it is a short text line).
        if (!conn->peer_eof) return;
        conn->mode = Connection::Mode::kText;
      } else {
        conn->mode = have == 4 && std::memcmp(conn->in.data(), kWireMagic,
                                              4) == 0
                         ? Connection::Mode::kBinary
                         : Connection::Mode::kText;
      }
    }
    if (conn->mode == Connection::Mode::kBinary) {
      ParseBinary(conn);
    } else {
      ParseText(conn);
    }
  }

  void ReadFrom(const ConnPtr& conn) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        c_bytes_read->Add(static_cast<uint64_t>(n));
        continue;
      }
      if (n == 0) {
        conn->peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->peer_eof = true;  // connection error: drop after drain
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out.clear();
      conn->closing = true;
      break;
    }
    ParseInput(conn);
  }

  void FlushTo(const ConnPtr& conn) {
    std::lock_guard<std::mutex> lock(conn->mu);
    size_t sent = 0;
    while (sent < conn->out.size()) {
      ssize_t n = send(conn->fd, conn->out.data() + sent,
                       conn->out.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        conn->out.clear();
        conn->closing = true;
        conn->peer_eof = true;
        return;
      }
      break;
    }
    if (sent > 0) c_bytes_written->Add(sent);
    conn->out.erase(0, sent);
  }

  void Accept() {
    for (;;) {
      int fd = accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient error; poll again
      }
      if (!SetNonBlocking(fd).ok()) {
        close(fd);
        continue;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(std::make_shared<Connection>(fd));
      g_open_conns->Add(1);
    }
  }

  void IoLoop() {
    std::vector<pollfd> pfds;
    std::vector<ConnPtr> polled;
    for (;;) {
      const bool stopping = stop_flag.load();
      if (stopping && listen_fd >= 0) {
        close(listen_fd);
        listen_fd = -1;
      }

      pfds.clear();
      polled.clear();
      pfds.push_back({wake_r, POLLIN, 0});
      if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        for (const ConnPtr& conn : conns) {
          short events = 0;
          {
            std::lock_guard<std::mutex> clock(conn->mu);
            if (stopping) conn->closing = true;
            const size_t depth = conn->queue.size() + (conn->busy ? 1 : 0);
            if (!conn->peer_eof && !conn->closing &&
                depth < options.max_pipelined_requests) {
              events |= POLLIN;
            }
            if (!conn->out.empty()) events |= POLLOUT;
          }
          pfds.push_back({conn->fd, events, 0});
          polled.push_back(conn);
        }
      }

      // A finite timeout backstops any missed wakeup and re-checks
      // stop_flag; the self-pipe makes the common case immediate.
      int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
      if (rc < 0 && errno != EINTR) break;

      size_t idx = 0;
      if (pfds[idx].revents & POLLIN) {
        char drain[256];
        while (read(wake_r, drain, sizeof(drain)) > 0) {
        }
      }
      ++idx;
      if (listen_fd >= 0) {
        if (pfds[idx].revents & POLLIN) Accept();
        ++idx;
      }
      for (size_t i = 0; i < polled.size(); ++i, ++idx) {
        short revents = pfds[idx].revents;
        if (revents & POLLOUT) FlushTo(polled[i]);
        if (revents & (POLLIN | POLLHUP | POLLERR)) ReadFrom(polled[i]);
      }

      // Reap connections whose work is fully drained.
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        for (size_t i = 0; i < conns.size();) {
          const ConnPtr& conn = conns[i];
          bool close_now = false;
          {
            std::lock_guard<std::mutex> clock(conn->mu);
            if ((conn->peer_eof || conn->closing) && !conn->busy &&
                conn->queue.empty() && conn->out.empty()) {
              conn->dead = true;
              close_now = true;
            }
          }
          if (close_now) {
            close(conn->fd);
            g_open_conns->Add(-1);
            conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
          } else {
            ++i;
          }
        }
        if (stopping && conns.empty()) return;
      }
    }
  }
};

VisCleanServer::VisCleanServer(SessionManager& manager, ServerOptions options)
    : impl_(std::make_unique<Impl>(manager, options)) {}

VisCleanServer::VisCleanServer(WireHandler& handler, ServerOptions options)
    : impl_(std::make_unique<Impl>(handler, options)) {}

VisCleanServer::~VisCleanServer() { Stop(); }

Status VisCleanServer::Start() {
  Impl& s = *impl_;
  VC_CHECK(!s.started, "server already started");
  s.listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(s.options.port);
  if (bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(s.listen_fd);
    s.listen_fd = -1;
    return Errno("bind");
  }
  if (listen(s.listen_fd, s.options.listen_backlog) < 0) {
    close(s.listen_fd);
    s.listen_fd = -1;
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close(s.listen_fd);
    s.listen_fd = -1;
    return Errno("getsockname");
  }
  s.bound_port = ntohs(addr.sin_port);
  VC_RETURN_IF_ERROR(SetNonBlocking(s.listen_fd));

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(s.listen_fd);
    s.listen_fd = -1;
    return Errno("pipe");
  }
  s.wake_r = pipe_fds[0];
  s.wake_w = pipe_fds[1];
  VC_RETURN_IF_ERROR(SetNonBlocking(s.wake_r));
  VC_RETURN_IF_ERROR(SetNonBlocking(s.wake_w));

  s.stop_flag.store(false);
  s.workers_stop = false;
  const size_t workers =
      s.options.worker_threads == 0 ? 1 : s.options.worker_threads;
  s.workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    s.workers.emplace_back([&s] { s.WorkerLoop(); });
  }
  s.io_thread = std::thread([&s] { s.IoLoop(); });
  s.started = true;
  return Status::Ok();
}

void VisCleanServer::Stop() {
  Impl& s = *impl_;
  if (!s.started) return;
  // Drain in two phases: the IO thread exits once every connection has
  // flushed (workers must stay alive to finish their requests), then the
  // workers see an empty dispatch queue and stop.
  s.stop_flag.store(true);
  s.Wake();
  s.io_thread.join();
  {
    std::lock_guard<std::mutex> lock(s.queue_mu);
    s.workers_stop = true;
  }
  s.queue_cv.notify_all();
  for (std::thread& w : s.workers) w.join();
  s.workers.clear();
  close(s.wake_r);
  close(s.wake_w);
  s.wake_r = s.wake_w = -1;
  if (s.listen_fd >= 0) {
    close(s.listen_fd);
    s.listen_fd = -1;
  }
  s.started = false;
}

uint16_t VisCleanServer::port() const { return impl_->bound_port; }

size_t VisCleanServer::connections() const {
  std::lock_guard<std::mutex> lock(impl_->conns_mu);
  return impl_->conns.size();
}

}  // namespace visclean
