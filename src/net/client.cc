#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace visclean {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + " failed, errno " +
                         std::to_string(errno));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Absolute deadline for an exchange starting now; 0 = none.
int64_t DeadlineFrom(size_t timeout_ms) {
  return timeout_ms == 0 ? 0 : NowMs() + static_cast<int64_t>(timeout_ms);
}

/// Waits until `fd` is ready for `events` or the absolute deadline passes.
/// deadline_ms == 0 blocks indefinitely.
Status AwaitReady(int fd, short events, int64_t deadline_ms,
                  const char* what) {
  for (;;) {
    int wait = -1;
    if (deadline_ms != 0) {
      int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) {
        return Status::DeadlineExceeded(std::string(what) + " timed out");
      }
      wait = static_cast<int>(remaining);
    }
    pollfd pfd{fd, events, 0};
    int n = poll(&pfd, 1, wait);
    if (n > 0) return Status::Ok();
    if (n == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status SetNonBlocking(int fd, bool enable) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, next) < 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

Result<int> ConnectLoopback(uint16_t port, size_t connect_timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // Non-blocking connect + poll so a dead peer fails in connect_timeout_ms
  // with kDeadlineExceeded rather than the kernel's SYN-retry budget.
  Status nb = SetNonBlocking(fd, true);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  const int64_t deadline = DeadlineFrom(connect_timeout_ms);
  for (;;) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EALREADY) {
      Status ready = AwaitReady(fd, POLLOUT, deadline, "connect");
      if (!ready.ok()) {
        close(fd);
        return ready;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        close(fd);
        errno = err != 0 ? err : errno;
        return Errno("connect");
      }
      break;
    }
    if (errno == EISCONN) break;
    close(fd);
    return Errno("connect");
  }
  Status blocking = SetNonBlocking(fd, false);
  if (!blocking.ok()) {
    close(fd);
    return blocking;
  }
  return fd;
}

/// Sends all bytes, polling for writability against the absolute deadline
/// when one is set (deadline_ms == 0 blocks like plain send).
Status SendAllTo(int fd, const std::string& bytes, int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    if (deadline_ms != 0) {
      VC_RETURN_IF_ERROR(AwaitReady(fd, POLLOUT, deadline_ms, "send"));
    }
    ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

}  // namespace

// ---- Client (binary protocol) ----

Client::~Client() { Disconnect(); }

Status Client::Connect(uint16_t port) {
  VC_CHECK(fd_ < 0, "client already connected");
  VC_CHECK(options_.wire_version >= kWireVersionMin &&
               options_.wire_version <= kWireVersion,
           "unsupported client wire version");
  Result<int> fd = ConnectLoopback(port, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  buffer_.clear();
  return Status::Ok();
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status status =
      SendAllTo(fd_, bytes, DeadlineFrom(options_.io_timeout_ms));
  if (!status.ok()) Disconnect();
  return status;
}

Result<std::string> Client::ReadFrame(int64_t deadline_ms) {
  char buf[64 * 1024];
  for (;;) {
    std::string payload;
    FrameStatus fs = NextFrame(buffer_, &payload);
    if (fs == FrameStatus::kFrame) return payload;
    if (fs == FrameStatus::kBad) {
      Disconnect();
      return Status::InvalidArgument("malformed frame from server");
    }
    if (deadline_ms != 0) {
      Status ready = AwaitReady(fd_, POLLIN, deadline_ms, "read");
      if (!ready.ok()) {
        // A deadline mid-frame leaves the stream unsynchronizable.
        Disconnect();
        return ready;
      }
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) {
      return Status::IoError("server closed the connection mid-response");
    }
    return Errno("recv");
  }
}

Result<WireResponse> Client::Call(WireRequest request) {
  request.request_id = next_request_id_++;
  const int64_t deadline = DeadlineFrom(options_.io_timeout_ms);
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status sent = SendAllTo(fd_, EncodeRequest(request, options_.wire_version),
                          deadline);
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  Result<std::string> payload = ReadFrame(deadline);
  if (!payload.ok()) return payload.status();
  Result<WireResponse> response =
      DecodeResponsePayload(payload.value(), options_.wire_version);
  if (!response.ok()) {
    Disconnect();
    return response.status();
  }
  if (response.value().request_id != request.request_id) {
    Disconnect();
    return Status::Internal("response id does not match the request");
  }
  return response;
}

namespace {

/// Converts a kError response to its Status; returns OK otherwise.
Status StatusOf(const WireResponse& response) {
  if (response.type != WireResponseType::kError) return Status::Ok();
  return {response.code, response.message};
}

Status WrongType(const char* expected) {
  return Status::Internal(std::string("unexpected response type, wanted ") +
                          expected);
}

}  // namespace

Result<SessionInfo> Client::Create(const std::string& id,
                                   const std::string& dataset,
                                   const std::string& vql,
                                   SessionOptions options,
                                   UserOptions user_options,
                                   UserCostModel cost_model) {
  WireRequest req;
  req.type = WireRequestType::kCreate;
  req.session_id = id;
  req.dataset = dataset;
  req.vql = vql;
  req.options = std::move(options);
  req.user_options = user_options;
  req.cost_model = cost_model;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Result<PendingInteraction> Client::Step(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kStep;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kPending) {
    return WrongType("PENDING");
  }
  return resp.value().pending;
}

Result<WireTraceSummary> Client::Answer(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kAnswer;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kTrace) return WrongType("TRACE");
  return resp.value().trace;
}

Result<SessionInfo> Client::GetStatus(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kGetStatus;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Status Client::Snapshot(const std::string& id, const std::string& path) {
  WireRequest req;
  req.type = WireRequestType::kSnapshot;
  req.session_id = id;
  req.path = path;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kAck) return WrongType("ACK");
  return Status::Ok();
}

Result<SessionInfo> Client::Restore(const std::string& id,
                                    const std::string& path) {
  WireRequest req;
  req.type = WireRequestType::kRestore;
  req.session_id = id;
  req.path = path;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Status Client::CloseSession(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kClose;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kAck) return WrongType("ACK");
  return Status::Ok();
}

Result<ServeStats> Client::Stats() {
  WireRequest req;
  req.type = WireRequestType::kStats;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kStats) return WrongType("STATS");
  return resp.value().stats;
}

Result<obs::MetricsSnapshot> Client::Metrics() {
  WireRequest req;
  req.type = WireRequestType::kMetrics;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kMetrics) {
    return WrongType("METRICS");
  }
  return obs::DecodeMetricsSnapshot(resp.value().metrics);
}

Result<std::string> Client::Traces() {
  WireRequest req;
  req.type = WireRequestType::kTraces;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kTraces) {
    return WrongType("TRACES");
  }
  return std::move(resp).value().metrics;
}

Result<std::string> Client::ExportState(const std::string& id, bool remove) {
  WireRequest req;
  req.type = WireRequestType::kExportState;
  req.session_id = id;
  req.remove = remove;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kState) return WrongType("STATE");
  return std::move(resp).value().state;
}

Result<SessionInfo> Client::ImportState(const std::string& id,
                                        const std::string& state) {
  WireRequest req;
  req.type = WireRequestType::kImportState;
  req.session_id = id;
  req.state = state;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Status Client::SetRole(uint32_t shard_id, uint64_t epoch) {
  WireRequest req;
  req.type = WireRequestType::kSetRole;
  req.shard_id = shard_id;
  req.epoch = epoch;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kAck) return WrongType("ACK");
  return Status::Ok();
}

Result<WireResponse> Client::Forward(uint32_t shard_id, uint64_t epoch,
                                     const WireRequest& inner) {
  VC_CHECK(inner.type != WireRequestType::kForwarded,
           "forwarded requests do not nest");
  WireRequest req;
  req.type = WireRequestType::kForwarded;
  req.shard_id = shard_id;
  req.epoch = epoch;
  req.inner = EncodeRequestPayload(inner);
  return Call(std::move(req));
}

// ---- LineClient (text protocol) ----

LineClient::~LineClient() { Disconnect(); }

Status LineClient::Connect(uint16_t port) {
  VC_CHECK(fd_ < 0, "client already connected");
  Result<int> fd = ConnectLoopback(port, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  buffer_.clear();
  return Status::Ok();
}

void LineClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<std::string> LineClient::Exchange(const std::string& line) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  const int64_t deadline = DeadlineFrom(options_.io_timeout_ms);
  Status sent = SendAllTo(fd_, line + "\n", deadline);
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  char buf[16 * 1024];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return out;
    }
    if (deadline != 0) {
      Status ready = AwaitReady(fd_, POLLIN, deadline, "read");
      if (!ready.ok()) {
        Disconnect();
        return ready;
      }
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) return Status::IoError("server closed the connection");
    return Errno("recv");
  }
}

}  // namespace visclean
