#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace visclean {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + " failed, errno " +
                         std::to_string(errno));
}

Result<int> ConnectLoopback(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    close(fd);
    return Errno("connect");
  }
}

Status SendAllTo(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

}  // namespace

// ---- Client (binary protocol) ----

Client::~Client() { Disconnect(); }

Status Client::Connect(uint16_t port) {
  VC_CHECK(fd_ < 0, "client already connected");
  Result<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  buffer_.clear();
  return Status::Ok();
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status status = SendAllTo(fd_, bytes);
  if (!status.ok()) Disconnect();
  return status;
}

Result<std::string> Client::ReadFrame() {
  char buf[64 * 1024];
  for (;;) {
    std::string payload;
    FrameStatus fs = NextFrame(buffer_, &payload);
    if (fs == FrameStatus::kFrame) return payload;
    if (fs == FrameStatus::kBad) {
      Disconnect();
      return Status::InvalidArgument("malformed frame from server");
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) {
      return Status::IoError("server closed the connection mid-response");
    }
    return Errno("recv");
  }
}

Result<WireResponse> Client::Call(WireRequest request) {
  request.request_id = next_request_id_++;
  VC_RETURN_IF_ERROR(SendAll(EncodeRequest(request)));
  Result<std::string> payload = ReadFrame();
  if (!payload.ok()) return payload.status();
  Result<WireResponse> response = DecodeResponsePayload(payload.value());
  if (!response.ok()) {
    Disconnect();
    return response.status();
  }
  if (response.value().request_id != request.request_id) {
    Disconnect();
    return Status::Internal("response id does not match the request");
  }
  return response;
}

namespace {

/// Converts a kError response to its Status; returns OK otherwise.
Status StatusOf(const WireResponse& response) {
  if (response.type != WireResponseType::kError) return Status::Ok();
  return {response.code, response.message};
}

Status WrongType(const char* expected) {
  return Status::Internal(std::string("unexpected response type, wanted ") +
                          expected);
}

}  // namespace

Result<SessionInfo> Client::Create(const std::string& id,
                                   const std::string& dataset,
                                   const std::string& vql,
                                   SessionOptions options,
                                   UserOptions user_options,
                                   UserCostModel cost_model) {
  WireRequest req;
  req.type = WireRequestType::kCreate;
  req.session_id = id;
  req.dataset = dataset;
  req.vql = vql;
  req.options = std::move(options);
  req.user_options = user_options;
  req.cost_model = cost_model;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Result<PendingInteraction> Client::Step(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kStep;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kPending) {
    return WrongType("PENDING");
  }
  return resp.value().pending;
}

Result<WireTraceSummary> Client::Answer(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kAnswer;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kTrace) return WrongType("TRACE");
  return resp.value().trace;
}

Result<SessionInfo> Client::GetStatus(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kGetStatus;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Status Client::Snapshot(const std::string& id, const std::string& path) {
  WireRequest req;
  req.type = WireRequestType::kSnapshot;
  req.session_id = id;
  req.path = path;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kAck) return WrongType("ACK");
  return Status::Ok();
}

Result<SessionInfo> Client::Restore(const std::string& id,
                                    const std::string& path) {
  WireRequest req;
  req.type = WireRequestType::kRestore;
  req.session_id = id;
  req.path = path;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kSessionInfo) {
    return WrongType("INFO");
  }
  return std::move(resp).value().info;
}

Status Client::CloseSession(const std::string& id) {
  WireRequest req;
  req.type = WireRequestType::kClose;
  req.session_id = id;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kAck) return WrongType("ACK");
  return Status::Ok();
}

Result<ServeStats> Client::Stats() {
  WireRequest req;
  req.type = WireRequestType::kStats;
  Result<WireResponse> resp = Call(std::move(req));
  if (!resp.ok()) return resp.status();
  VC_RETURN_IF_ERROR(StatusOf(resp.value()));
  if (resp.value().type != WireResponseType::kStats) return WrongType("STATS");
  return resp.value().stats;
}

// ---- LineClient (text protocol) ----

LineClient::~LineClient() { Disconnect(); }

Status LineClient::Connect(uint16_t port) {
  VC_CHECK(fd_ < 0, "client already connected");
  Result<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  buffer_.clear();
  return Status::Ok();
}

void LineClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<std::string> LineClient::Exchange(const std::string& line) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status sent = SendAllTo(fd_, line + "\n");
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  char buf[16 * 1024];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return out;
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) return Status::IoError("server closed the connection");
    return Errno("recv");
  }
}

}  // namespace visclean
