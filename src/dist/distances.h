// Alternative visualization distance functions (Section II-B mentions
// Euclidean, Kullback-Leibler, Jensen-Shannon as drop-in replacements for
// EMD). These align the two visualizations by x label — a bar present on one
// side only contributes mass against zero — then compare the normalized
// distributions.
#ifndef VISCLEAN_DIST_DISTANCES_H_
#define VISCLEAN_DIST_DISTANCES_H_

#include <functional>
#include <string>

#include "dist/vis_data.h"

namespace visclean {

/// Signature shared by all visualization distance functions.
using VisDistanceFn = std::function<double(const VisData&, const VisData&)>;

/// L2 distance between the x-aligned normalized distributions.
double EuclideanDistance(const VisData& a, const VisData& b);

/// Smoothed KL divergence KL(a || b) over x-aligned distributions
/// (epsilon-smoothing avoids infinities when a bar is missing on one side).
double KlDivergence(const VisData& a, const VisData& b);

/// Jensen-Shannon divergence (symmetric, bounded by ln 2).
double JsDivergence(const VisData& a, const VisData& b);

/// Looks up a distance by name: "emd", "euclidean", "kl", "js".
/// Unknown names fall back to EMD.
VisDistanceFn DistanceByName(const std::string& name);

}  // namespace visclean

#endif  // VISCLEAN_DIST_DISTANCES_H_
