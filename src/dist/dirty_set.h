// DirtySet: a reusable sparse set of invalidated group slots.
//
// The incremental benefit engine marks the provenance groups whose input
// tuples a repair touched, then re-aggregates exactly those. A candidate
// evaluation marks a handful of groups out of hundreds, thousands of times
// per iteration, so Clear() must not pay O(universe): membership is tracked
// by epoch stamps and Clear() just bumps the epoch.
#ifndef VISCLEAN_DIST_DIRTY_SET_H_
#define VISCLEAN_DIST_DIRTY_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace visclean {

/// \brief Set of dirty slot ids over a dense universe [0, size).
class DirtySet {
 public:
  /// Empties the set and (re)sizes the universe. O(ids marked) amortized;
  /// only pays O(universe) when the universe grows or the epoch wraps.
  void Reset(size_t universe) {
    ids_.clear();
    ++epoch_;
    if (stamp_.size() != universe || epoch_ == 0) {
      stamp_.assign(universe, 0);
      epoch_ = 1;
    }
  }

  /// Marks `id` dirty; returns true when it was clean before.
  bool Mark(size_t id) {
    if (stamp_[id] == epoch_) return false;
    stamp_[id] = epoch_;
    ids_.push_back(id);
    return true;
  }

  bool IsDirty(size_t id) const {
    return id < stamp_.size() && stamp_[id] == epoch_;
  }

  /// Marked ids, in marking order.
  const std::vector<size_t>& ids() const { return ids_; }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<size_t> ids_;
  uint32_t epoch_ = 0;
};

}  // namespace visclean

#endif  // VISCLEAN_DIST_DIRTY_SET_H_
