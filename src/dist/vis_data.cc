#include "dist/vis_data.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace visclean {

double VisData::TotalY() const {
  double total = 0.0;
  for (const VisPoint& p : points) total += p.y;
  return total;
}

std::vector<double> VisData::NormalizedY() const {
  std::vector<double> out(points.size(), 0.0);
  double total = TotalY();
  if (total <= 0.0 || !std::isfinite(total)) {
    if (!points.empty()) {
      double u = 1.0 / static_cast<double>(points.size());
      std::fill(out.begin(), out.end(), u);
    }
    return out;
  }
  for (size_t i = 0; i < points.size(); ++i) out[i] = points[i].y / total;
  return out;
}

std::string VisData::ToAsciiChart(size_t width) const {
  std::string out;
  double max_y = 0.0;
  size_t max_label = 0;
  for (const VisPoint& p : points) {
    max_y = std::max(max_y, std::fabs(p.y));
    max_label = std::max(max_label, p.x.size());
  }
  max_label = std::min<size_t>(max_label, 24);
  double total = TotalY();
  for (const VisPoint& p : points) {
    std::string label = p.x.substr(0, max_label);
    label.resize(max_label, ' ');
    size_t bar_len =
        max_y > 0 ? static_cast<size_t>(std::round(std::fabs(p.y) / max_y *
                                                   static_cast<double>(width)))
                  : 0;
    out += label;
    out += " | ";
    out.append(bar_len, '#');
    if (type == ChartType::kPie && total > 0) {
      out += StrFormat(" %.1f%%", p.y / total * 100.0);
    } else {
      out += StrFormat(" %.6g", p.y);
    }
    out += '\n';
  }
  return out;
}

}  // namespace visclean
