// The rendered form of a visualization: an ordered series of (x, y) points.
//
// Everything downstream of the VQL executor (distance functions, the benefit
// model, the ASCII renderer in examples/) consumes VisData rather than raw
// tables, mirroring d = (d_1 ... d_m), d_i = (d_i(x), d_i(y)) in Section II-B.
#ifndef VISCLEAN_DIST_VIS_DATA_H_
#define VISCLEAN_DIST_VIS_DATA_H_

#include <string>
#include <vector>

namespace visclean {

/// Chart family from the VQL VISUALIZE clause.
enum class ChartType { kBar, kPie };

/// \brief One mark: an x label (group/bin key) and a numeric y.
struct VisPoint {
  std::string x;
  double y = 0.0;
};

/// \brief A complete rendered visualization.
struct VisData {
  ChartType type = ChartType::kBar;
  std::string x_name;           ///< column behind the X axis
  std::string y_name;           ///< column (or aggregate) behind the Y axis
  std::vector<VisPoint> points; ///< in display order (post SORT/LIMIT)

  /// Sum of all y values.
  double TotalY() const;

  /// Y values rescaled to a probability distribution (sum 1). When the total
  /// is not positive, returns the uniform distribution (matching the paper's
  /// normalization step before EMD).
  std::vector<double> NormalizedY() const;

  /// Multi-line ASCII rendering (bar chart / pie breakdown) for examples and
  /// debugging.
  std::string ToAsciiChart(size_t width = 40) const;
};

}  // namespace visclean

#endif  // VISCLEAN_DIST_VIS_DATA_H_
