// The rendered form of a visualization: an ordered series of (x, y) points.
//
// Everything downstream of the VQL executor (distance functions, the benefit
// model, the ASCII renderer in examples/) consumes VisData rather than raw
// tables, mirroring d = (d_1 ... d_m), d_i = (d_i(x), d_i(y)) in Section II-B.
#ifndef VISCLEAN_DIST_VIS_DATA_H_
#define VISCLEAN_DIST_VIS_DATA_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace visclean {

/// Chart family from the VQL VISUALIZE clause.
enum class ChartType { kBar, kPie };

/// \brief One mark: an x label (group/bin key) and a numeric y.
struct VisPoint {
  std::string x;
  double y = 0.0;
};

/// \brief A complete rendered visualization.
struct VisData {
  ChartType type = ChartType::kBar;
  std::string x_name;           ///< column behind the X axis
  std::string y_name;           ///< column (or aggregate) behind the Y axis
  std::vector<VisPoint> points; ///< in display order (post SORT/LIMIT)

  /// Sum of all y values.
  double TotalY() const;

  /// Y values rescaled to a probability distribution (sum 1). When the total
  /// is not positive, returns the uniform distribution (matching the paper's
  /// normalization step before EMD).
  std::vector<double> NormalizedY() const;

  /// Multi-line ASCII rendering (bar chart / pie breakdown) for examples and
  /// debugging.
  std::string ToAsciiChart(size_t width = 40) const;
};

// ---------------------------------------------------------- provenance --
//
// Tuple -> group provenance for a rendered visualization: which table rows
// feed which aggregation group. Built by ExecuteVqlIndexed (vql/executor.h)
// for GROUP/BIN queries; the incremental benefit engine uses it to
// re-aggregate only the groups whose input tuples a speculative repair
// touched, instead of re-rendering Q(D) from every live row.

/// \brief State of one aggregation group, sufficient to re-derive its mark.
///
/// `rows` are the ascending ids of every live row that produced this group's
/// key (rows whose measure is null still claim the key); `sum`/`count`
/// accumulate only non-null measures, in ascending row order — the exact
/// order a full render visits rows — so a from-scratch re-aggregation over
/// `rows` reproduces the full render bit-for-bit.
struct GroupState {
  std::string label;        ///< display key (group value / bin label)
  double numeric_key = 0.0; ///< sort key; last contributing row wins
  double sum = 0.0;         ///< sum of non-null measures, in row order
  size_t count = 0;         ///< number of non-null measures
  std::vector<size_t> rows; ///< ascending contributing row ids
};

/// \brief The tuple->group index of one rendered visualization.
///
/// Group slots are stable across incremental commits: an emptied group keeps
/// its slot on a free list (its key leaves `group_of_key`) and a newly born
/// group reuses one, so `group_of_row` entries never need mass rewrites.
struct VisProvenance {
  static constexpr size_t kNoGroup = static_cast<size_t>(-1);

  /// True when the index is valid: the query has a GROUP/BIN transform (per-
  /// tuple marks have no group structure worth indexing) and the last build
  /// succeeded. When false, consumers must fall back to full renders.
  bool supported = false;

  std::vector<GroupState> groups;            ///< slot -> state (may be empty)
  std::map<std::string, size_t> group_of_key;  ///< live groups, label-ordered
  std::vector<size_t> group_of_row;          ///< row id -> slot or kNoGroup
  std::vector<size_t> free_slots;            ///< emptied slots for reuse

  /// Slot feeding `row`, or kNoGroup (filtered out, dead, or out of range).
  size_t GroupOfRow(size_t row) const {
    return row < group_of_row.size() ? group_of_row[row] : kNoGroup;
  }

  size_t num_live_groups() const { return group_of_key.size(); }

  void Clear() {
    supported = false;
    groups.clear();
    group_of_key.clear();
    group_of_row.clear();
    free_slots.clear();
  }
};

}  // namespace visclean

#endif  // VISCLEAN_DIST_VIS_DATA_H_
