#include "dist/emd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>

namespace visclean {

namespace {

// Normalizes weights to sum 1; uniform when the sum is not positive.
std::vector<double> NormalizeWeights(const std::vector<double>& w) {
  std::vector<double> out(w.size(), 0.0);
  double total = 0.0;
  for (double x : w) total += x;
  if (total <= 0.0 || !std::isfinite(total)) {
    if (!w.empty()) {
      std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(w.size()));
    }
    return out;
  }
  for (size_t i = 0; i < w.size(); ++i) out[i] = w[i] / total;
  return out;
}

// A distribution is only meaningful over finite positions with non-negative
// finite mass: entries at NaN/inf positions are dropped (a NaN position
// would even break std::sort's ordering contract below), and NaN/inf or
// negative weights are treated as zero mass. All-finite non-negative input
// — everything the executor produces — passes through unchanged.
void SanitizeHistogram(const std::vector<double>& positions,
                       const std::vector<double>& weights,
                       std::vector<double>* out_pos,
                       std::vector<double>* out_w) {
  out_pos->reserve(positions.size());
  out_w->reserve(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    if (!std::isfinite(positions[i])) continue;
    double w = weights[i];
    if (!std::isfinite(w) || w < 0.0) w = 0.0;
    out_pos->push_back(positions[i]);
    out_w->push_back(w);
  }
}

}  // namespace

double Emd1D(const std::vector<double>& raw_positions_a,
             const std::vector<double>& raw_weights_a,
             const std::vector<double>& raw_positions_b,
             const std::vector<double>& raw_weights_b) {
  VC_CHECK(raw_positions_a.size() == raw_weights_a.size(),
           "Emd1D: size mismatch (a)");
  VC_CHECK(raw_positions_b.size() == raw_weights_b.size(),
           "Emd1D: size mismatch (b)");
  std::vector<double> positions_a, weights_a, positions_b, weights_b;
  SanitizeHistogram(raw_positions_a, raw_weights_a, &positions_a, &weights_a);
  SanitizeHistogram(raw_positions_b, raw_weights_b, &positions_b, &weights_b);
  if (positions_a.empty() && positions_b.empty()) return 0.0;
  if (positions_a.empty() || positions_b.empty()) {
    // One side has no mass at all; by convention (matching Eq. 3 where the
    // shippable flow is 0) the distance is 0. Callers compare non-empty
    // visualizations in practice.
    return 0.0;
  }

  std::vector<double> wa = NormalizeWeights(weights_a);
  std::vector<double> wb = NormalizeWeights(weights_b);

  // Event list: (position, +mass into A's CDF, +mass into B's CDF).
  struct Event {
    double pos;
    double da;
    double db;
  };
  std::vector<Event> events;
  events.reserve(wa.size() + wb.size());
  for (size_t i = 0; i < wa.size(); ++i)
    events.push_back({positions_a[i], wa[i], 0.0});
  for (size_t j = 0; j < wb.size(); ++j)
    events.push_back({positions_b[j], 0.0, wb[j]});
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.pos < y.pos; });

  // EMD in 1-D equals the integral of |F_a(t) - F_b(t)| dt.
  double emd = 0.0;
  double cdf_a = 0.0, cdf_b = 0.0;
  for (size_t i = 0; i + 1 <= events.size(); ++i) {
    cdf_a += events[i].da;
    cdf_b += events[i].db;
    if (i + 1 < events.size()) {
      double gap = events[i + 1].pos - events[i].pos;
      emd += std::fabs(cdf_a - cdf_b) * gap;
    }
  }
  return emd;
}

double EmdDistance(const VisData& a, const VisData& b) {
  std::vector<double> pa = a.NormalizedY();
  std::vector<double> pb = b.NormalizedY();
  // Positions and masses coincide: delta_ij = |d_i(y) - d'_j(y)| with
  // normalized y on both axes of the ground space.
  return Emd1D(pa, pa, pb, pb);
}

Result<TransportResult> SolveTransportation(
    const std::vector<double>& supplies, const std::vector<double>& demands,
    const std::vector<std::vector<double>>& cost) {
  const size_t m = supplies.size();
  const size_t n = demands.size();
  if (cost.size() != m) {
    return Status::InvalidArgument("cost rows != #supplies");
  }
  for (const auto& row : cost) {
    if (row.size() != n) return Status::InvalidArgument("cost cols != #demands");
    for (double c : row) {
      if (!std::isfinite(c)) return Status::InvalidArgument("non-finite cost");
    }
  }
  for (double s : supplies) {
    if (s < 0 || !std::isfinite(s)) {
      return Status::InvalidArgument("supply not finite and non-negative");
    }
  }
  for (double d : demands) {
    if (d < 0 || !std::isfinite(d)) {
      return Status::InvalidArgument("demand not finite and non-negative");
    }
  }

  // Scale masses to integers for an exact min-cost-flow solve.
  constexpr double kScale = 1e9;
  auto to_int = [](double v) {
    return static_cast<int64_t>(std::llround(v * kScale));
  };

  // Successive-shortest-path min-cost flow.
  const size_t source = m + n;
  const size_t sink = m + n + 1;
  const size_t num_nodes = m + n + 2;

  struct Edge {
    size_t to;
    int64_t cap;
    double cost;
    size_t rev;  // index of reverse edge in graph[to]
  };
  std::vector<std::vector<Edge>> graph(num_nodes);
  auto add_edge = [&](size_t from, size_t to, int64_t cap, double c) {
    graph[from].push_back({to, cap, c, graph[to].size()});
    graph[to].push_back({from, 0, -c, graph[from].size() - 1});
  };

  int64_t total_supply = 0, total_demand = 0;
  for (size_t i = 0; i < m; ++i) {
    int64_t s = to_int(supplies[i]);
    total_supply += s;
    add_edge(source, i, s, 0.0);
  }
  for (size_t j = 0; j < n; ++j) {
    int64_t d = to_int(demands[j]);
    total_demand += d;
    add_edge(m + j, sink, d, 0.0);
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      add_edge(i, m + j, std::numeric_limits<int64_t>::max() / 4, cost[i][j]);
    }
  }

  int64_t need = std::min(total_supply, total_demand);

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> potential(num_nodes, 0.0);
  // Costs may be negative in general; one Bellman-Ford pass initializes
  // potentials so Dijkstra works afterwards.
  {
    std::vector<double> dist(num_nodes, kInf);
    dist[source] = 0.0;
    for (size_t iter = 0; iter + 1 < num_nodes; ++iter) {
      bool changed = false;
      for (size_t u = 0; u < num_nodes; ++u) {
        if (dist[u] == kInf) continue;
        for (const Edge& e : graph[u]) {
          if (e.cap > 0 && dist[u] + e.cost < dist[e.to] - 1e-15) {
            dist[e.to] = dist[u] + e.cost;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    for (size_t u = 0; u < num_nodes; ++u) {
      if (dist[u] < kInf) potential[u] = dist[u];
    }
  }

  int64_t flow_sent = 0;
  double total_cost = 0.0;
  std::vector<double> dist(num_nodes);
  std::vector<size_t> prev_node(num_nodes), prev_edge(num_nodes);
  while (flow_sent < need) {
    std::fill(dist.begin(), dist.end(), kInf);
    dist[source] = 0.0;
    using Item = std::pair<double, size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.push({0.0, source});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + 1e-15) continue;
      for (size_t k = 0; k < graph[u].size(); ++k) {
        const Edge& e = graph[u][k];
        if (e.cap <= 0) continue;
        double nd = dist[u] + e.cost + potential[u] - potential[e.to];
        if (nd < dist[e.to] - 1e-15) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = k;
          pq.push({nd, e.to});
        }
      }
    }
    if (dist[sink] == kInf) break;  // no more augmenting paths
    for (size_t u = 0; u < num_nodes; ++u) {
      if (dist[u] < kInf) potential[u] += dist[u];
    }
    // Bottleneck along the path.
    int64_t push = need - flow_sent;
    for (size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph[prev_node[v]][prev_edge[v]].cap);
    }
    for (size_t v = sink; v != source; v = prev_node[v]) {
      Edge& e = graph[prev_node[v]][prev_edge[v]];
      e.cap -= push;
      graph[v][e.rev].cap += push;
      total_cost += e.cost * static_cast<double>(push);
    }
    flow_sent += push;
  }

  TransportResult result;
  result.cost = total_cost / kScale;
  result.total_flow = static_cast<double>(flow_sent) / kScale;
  result.flow.assign(m, std::vector<double>(n, 0.0));
  // Recover f_ij from the residual reverse edges (demand -> supply).
  for (size_t i = 0; i < m; ++i) {
    for (const Edge& e : graph[i]) {
      if (e.to >= m && e.to < m + n) {
        int64_t shipped = graph[e.to][e.rev].cap;  // reverse cap == flow
        // Only count edges whose reverse we created (cost >= 0 edge pairs
        // share this structure); shipped is 0 for untouched edges.
        result.flow[i][e.to - m] += static_cast<double>(shipped) / kScale;
      }
    }
  }
  return result;
}

}  // namespace visclean
