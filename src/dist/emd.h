// Earth Mover's Distance between visualizations (Section II-B, Eqs. 1-4).
//
// The paper normalizes both y-series into probability distributions and uses
// delta_ij = |d_i(y) - d'_j(y)| as the ground distance, i.e. the optimal
// transport cost between two 1-D point clouds whose positions and masses are
// both the normalized y values. Two solvers are provided:
//
//  * Emd1D        — exact closed form via the CDF integral, O(m log m + n
//                   log n); this exploits that the ground space is the real
//                   line, where optimal transport is monotone.
//  * SolveTransportation — exact general solver (successive-shortest-path
//                   min-cost flow on scaled integer masses); works for any
//                   cost matrix and is used to cross-validate Emd1D in tests.
#ifndef VISCLEAN_DIST_EMD_H_
#define VISCLEAN_DIST_EMD_H_

#include <vector>

#include "common/status.h"
#include "dist/vis_data.h"

namespace visclean {

/// \brief EMD between two visualizations exactly as Eq. 4 defines it:
/// normalize both y-series to distributions, ground distance
/// |d_i(y) - d'_j(y)|, divided by total shipped flow (= 1 after
/// normalization). Returns 0 for two empty visualizations.
double EmdDistance(const VisData& a, const VisData& b);

/// \brief Exact 1-D EMD between weighted point clouds.
///
/// `positions_*` are locations on the real line, `weights_*` nonnegative
/// masses. Both weight vectors are normalized to sum 1 internally (uniform
/// when the sum is zero). Complexity O(m log m + n log n).
double Emd1D(const std::vector<double>& positions_a,
             const std::vector<double>& weights_a,
             const std::vector<double>& positions_b,
             const std::vector<double>& weights_b);

/// \brief Result of the general transportation solve.
struct TransportResult {
  double cost = 0.0;                          ///< sum f_ij * c_ij
  double total_flow = 0.0;                    ///< sum f_ij
  std::vector<std::vector<double>> flow;      ///< m x n optimal flow
};

/// \brief Solves min sum f_ij c_ij s.t. row sums <= supplies, column sums <=
/// demands, total flow = min(sum supplies, sum demands) — the exact program
/// of Eqs. 1-3.
///
/// Exact for supplies/demands representable after scaling by 1e9 (inputs are
/// probabilities here). Errors on negative inputs or dimension mismatch.
Result<TransportResult> SolveTransportation(
    const std::vector<double>& supplies, const std::vector<double>& demands,
    const std::vector<std::vector<double>>& cost);

}  // namespace visclean

#endif  // VISCLEAN_DIST_EMD_H_
