#include "dist/distances.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "dist/emd.h"

namespace visclean {

namespace {

// Union of x labels -> (normalized mass in a, normalized mass in b).
std::vector<std::pair<double, double>> AlignByX(const VisData& a,
                                                const VisData& b) {
  std::map<std::string, std::pair<double, double>> merged;
  std::vector<double> na = a.NormalizedY();
  std::vector<double> nb = b.NormalizedY();
  for (size_t i = 0; i < a.points.size(); ++i) {
    merged[a.points[i].x].first += na[i];
  }
  for (size_t j = 0; j < b.points.size(); ++j) {
    merged[b.points[j].x].second += nb[j];
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(merged.size());
  for (const auto& [x, pq] : merged) out.push_back(pq);
  return out;
}

constexpr double kEps = 1e-9;

}  // namespace

double EuclideanDistance(const VisData& a, const VisData& b) {
  double sum = 0.0;
  for (const auto& [p, q] : AlignByX(a, b)) {
    sum += (p - q) * (p - q);
  }
  return std::sqrt(sum);
}

double KlDivergence(const VisData& a, const VisData& b) {
  double kl = 0.0;
  for (const auto& [p, q] : AlignByX(a, b)) {
    double ps = p + kEps, qs = q + kEps;
    kl += ps * std::log(ps / qs);
  }
  return kl < 0 ? 0.0 : kl;
}

double JsDivergence(const VisData& a, const VisData& b) {
  double js = 0.0;
  for (const auto& [p, q] : AlignByX(a, b)) {
    double ps = p + kEps, qs = q + kEps;
    double m = 0.5 * (ps + qs);
    js += 0.5 * ps * std::log(ps / m) + 0.5 * qs * std::log(qs / m);
  }
  return js < 0 ? 0.0 : js;
}

VisDistanceFn DistanceByName(const std::string& name) {
  if (name == "euclidean") return EuclideanDistance;
  if (name == "kl") return KlDivergence;
  if (name == "js") return JsDivergence;
  return [](const VisData& a, const VisData& b) { return EmdDistance(a, b); };
}

}  // namespace visclean
