// Pooled binary-protocol connections from the router to its shards.
//
// Router workers run concurrently, and net::Client is deliberately
// single-threaded, so the pool keeps a free-list of connected clients per
// shard: Call() pops one (or dials a new connection), runs the exchange,
// and returns it. A connection that fails mid-exchange is discarded rather
// than returned — after a transport error or an elapsed deadline the stream
// is unsynchronizable, which is also why net::Client disconnects itself on
// those paths.
//
// Drop() closes a shard's cached connections when the router declares it
// dead or removes it; without this a recovered topology would keep handing
// out sockets to a corpse until each failed organically.
#ifndef VISCLEAN_SHARD_CLIENT_POOL_H_
#define VISCLEAN_SHARD_CLIENT_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/client.h"
#include "serve/wire.h"

namespace visclean {
namespace shard {

/// \brief Per-shard pool of net::Client connections.
class ShardClientPool {
 public:
  /// `options` applies to every pooled connection — the router always sets
  /// io_timeout_ms so a hung shard surfaces as kDeadlineExceeded instead of
  /// wedging a worker.
  explicit ShardClientPool(ClientOptions options = {}) : options_(options) {}

  /// One request/response exchange with the shard at `port`. A failed
  /// Status is a transport-level problem (connect, deadline, framing); a
  /// kError *response* is an application error from the shard and comes
  /// back as a value.
  Result<WireResponse> Call(uint32_t shard_id, uint16_t port,
                            const WireRequest& request);

  /// Closes every cached connection to `shard_id`.
  void Drop(uint32_t shard_id);

  /// Cached idle connections (tests).
  size_t idle_count() const;

 private:
  ClientOptions options_;
  mutable std::mutex mu_;
  std::map<uint32_t, std::vector<std::unique_ptr<Client>>> idle_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_CLIENT_POOL_H_
