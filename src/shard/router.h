// ShardRouter: the front tier of the two-tier serving stack.
//
// A router is a WireHandler, so the same net::VisCleanServer machinery that
// fronts a shard's SessionManager fronts the router — clients speak the
// identical protocol to either and cannot tell which they reached. Behind
// the handler the router owns:
//
//   * membership  — a HashRing of routable shards plus per-shard liveness/
//                   draining flags and a topology epoch, bumped on every
//                   membership change and stamped on every forward so a
//                   shard can reject a router working from dead topology;
//   * placement   — the authoritative session→shard PlacementTable; new
//                   sessions land on their ring owner, after which the
//                   placement is free to diverge from the ring (migration,
//                   rebalancing, recovery) without re-homing anything;
//   * forwarding  — session requests acquire a route reference, travel to
//                   the owning shard in a kForwarded envelope over pooled
//                   connections, and release the reference. One transparent
//                   retry covers the two recoverable cases: a transport
//                   failure (the shard is declared dead, its sessions are
//                   re-homed from disk, and the request re-resolves) and a
//                   kUnavailable answer (stale placement; re-resolve).
//   * migration   — MigrationCoordinator moves live sessions between shards
//                   (admin kMigrateSession, DrainShard, hot-shard
//                   rebalancing driven by metrics-snapshot activity deltas —
//                   the same serve.steps/serve.answers counters kMetrics
//                   exports, so rebalance decisions and scraped metrics
//                   cannot disagree).
//   * recovery    — a dead shard's sessions are re-admitted on their ring
//                   owners from the newest persist_progress snapshots on
//                   disk (ShardHost and the shards share a filesystem).
//
// Locking: topo_mu_ guards ring/membership/epoch and is never held across
// network IO. Placement has its own lock; the two never nest in the same
// direction twice (topology is always resolved first, then released).
#ifndef VISCLEAN_SHARD_ROUTER_H_
#define VISCLEAN_SHARD_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "serve/wire.h"
#include "shard/client_pool.h"
#include "shard/migration.h"
#include "shard/placement.h"
#include "shard/ring.h"

namespace visclean {
namespace shard {

/// \brief One shard as the router sees it at startup or join time.
struct RouterShardConfig {
  uint32_t shard_id = 0;
  uint16_t port = 0;          ///< the shard's VisCleanServer port (loopback)
  std::string snapshot_dir;   ///< the shard's persist_progress directory;
                              ///< "" disables crash recovery for this shard
};

/// \brief Router configuration.
struct RouterOptions {
  std::vector<RouterShardConfig> shards;
  /// Virtual points per shard on the consistent-hash ring.
  size_t ring_replicas = 64;
  /// Connection behaviour for router→shard calls. io_timeout_ms of 0 is
  /// replaced with 5000 — a router must never block a worker on a hung
  /// shard, that is the dead-peer signal recovery keys off.
  ClientOptions client;
  /// How long a request waits for an in-progress migration of its session.
  size_t route_wait_deadline_ms = 5000;
  /// How long a migration waits for a session's in-flight requests.
  size_t migration_drain_deadline_ms = 5000;
  /// Rebalance trigger: hottest shard's activity delta must exceed
  /// hot_ratio × the coldest shard's to justify moving sessions.
  double hot_ratio = 1.5;
  /// Sessions moved per rebalance pass.
  size_t max_migrations_per_rebalance = 2;
  /// Period of the background rebalance thread; 0 = manual Rebalance() only.
  size_t rebalance_interval_ms = 0;
};

/// \brief Router-side counters (tests + the scaling bench).
struct RouterStats {
  uint64_t forwards = 0;            ///< requests forwarded to shards
  uint64_t failovers = 0;           ///< transparent retries after a failure
  uint64_t migrations = 0;          ///< sessions moved live (all triggers)
  uint64_t recovered_sessions = 0;  ///< re-homed from disk after a death
  uint64_t lost_sessions = 0;       ///< unrecoverable (no usable snapshot)
};

/// \brief Consistent-hash router over N shard servers. Thread-safe.
class ShardRouter : public WireHandler {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Registers the configured shards, announces roles (kSetRole), and
  /// starts the rebalance thread when an interval is configured. Fails on
  /// duplicate shard ids; a shard that cannot be reached is still admitted
  /// (it may come up later) but will fail its first forward.
  Status Start();

  /// Stops the rebalance thread. Idempotent; the destructor calls it.
  void Stop();

  /// The WireHandler surface: session requests route to shards, kStats
  /// aggregates across them, admin frames drive the calls below.
  WireResponse Handle(const WireRequest& request) override;

  // Admin surface (also reachable over the wire / text grammar).
  Status JoinShard(uint32_t shard_id, uint16_t port,
                   const std::string& snapshot_dir = "");
  Status DrainShard(uint32_t shard_id);
  Status MigrateSession(const std::string& id, uint32_t target_shard);
  WireTopology Topology() const;

  /// Declares `shard_id` dead: removes it from the ring, bumps the epoch,
  /// drops its pooled connections, and re-homes its sessions from their
  /// newest on-disk snapshots. Idempotent. Called automatically when a
  /// forward hits a transport failure.
  Status RecoverShard(uint32_t shard_id);

  /// One hot-shard rebalance pass; returns sessions moved.
  size_t Rebalance();

  uint64_t epoch() const;
  RouterStats router_stats() const;
  PlacementTable& placement() { return placement_; }

  /// The router's own metrics registry (router.* counters and histograms).
  /// kMetrics answers merge this with every live shard's snapshot.
  obs::Registry& registry() { return registry_; }

 private:
  struct ShardState {
    uint16_t port = 0;
    std::string snapshot_dir;
    bool alive = true;
    bool draining = false;
    uint64_t last_activity = 0;  ///< steps+answers at the last rebalance poll
  };

  /// Resolves a live shard's port and the current epoch (fails when the
  /// shard is unknown, dead, or — unless `allow_draining` — draining).
  Result<std::pair<uint16_t, uint64_t>> PortAndEpoch(
      uint32_t shard_id, bool allow_draining = true) const;
  /// The ring owner for a session id plus its port/epoch, in one lock hold.
  Result<MigrationEndpoints> ResolveTarget(const std::string& id) const;

  WireResponse RouteAdmission(const WireRequest& request);
  WireResponse RouteSession(const WireRequest& request);
  WireResponse AggregateStats(const WireRequest& request);
  WireResponse AggregateMetrics(const WireRequest& request);
  Status RehomeFromDisk(const std::string& id, const std::string& dir);
  void AnnounceEpoch();
  void RebalanceLoop();

  RouterOptions options_;
  // Declared before everything holding resolved metric handles.
  obs::Registry registry_;
  obs::Counter* c_forwards_;
  obs::Counter* c_failovers_;
  obs::Counter* c_migrations_;
  obs::Counter* c_recovered_;
  obs::Counter* c_lost_;
  obs::Histogram* h_forward_ns_;
  ShardClientPool pool_;
  PlacementTable placement_;
  MigrationCoordinator migrator_;

  mutable std::mutex topo_mu_;
  HashRing ring_;
  std::map<uint32_t, ShardState> shards_;
  uint64_t epoch_ = 1;

  std::mutex rebalance_mu_;
  std::condition_variable rebalance_cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread rebalance_thread_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_ROUTER_H_
