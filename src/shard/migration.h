// The live-migration state machine: pin → drain → export → import → flip.
//
// Migrate() moves one session between two shards without dropping or
// reordering any request:
//
//   1. pin    — PlacementTable::BeginMigration marks the session migrating;
//               new router workers block in AcquireRoute.
//   2. drain  — BeginMigration returns once the in-flight route references
//               hit zero, so nothing is mid-request on the source shard.
//   3. export — kExportState{remove=true} forwarded to the source: the
//               shard serializes the session (VCSN bytes, including a
//               parked composite question if one is pending) and retires
//               its copy behind a tombstone.
//   4. import — kImportState forwarded to the target admits the session
//               from those bytes, bit-identical to the original.
//   5. flip   — EndMigration repoints the placement and wakes the blocked
//               workers, whose queued requests now forward to the target in
//               their original per-connection order.
//
// Failure handling: an export failure aborts in place (the source still
// owns the session). An import failure re-imports the bytes back into the
// source — the session keeps serving where it was. Only if that restore
// also fails is the session truly lost; the placement is removed so later
// requests get kNotFound instead of a forward into the void.
#ifndef VISCLEAN_SHARD_MIGRATION_H_
#define VISCLEAN_SHARD_MIGRATION_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/wire.h"
#include "shard/client_pool.h"
#include "shard/placement.h"

namespace visclean {
namespace shard {

/// Wraps `inner` in a kForwarded envelope addressed to (shard_id, epoch).
WireRequest ForwardEnvelope(uint32_t shard_id, uint64_t epoch,
                            const WireRequest& inner);

/// Forwards `inner` to the shard at `port` through the pool and returns the
/// shard's response to the inner request. A kError response is converted to
/// its failed Status, so callers only see successful payloads.
Result<WireResponse> ForwardCall(ShardClientPool& pool, uint32_t shard_id,
                                 uint16_t port, uint64_t epoch,
                                 const WireRequest& inner);

/// \brief Endpoints of one migration, resolved by the router under its
/// topology lock before the (slow, unlocked) transfer begins.
struct MigrationEndpoints {
  uint32_t source_shard = 0;
  uint16_t source_port = 0;
  uint32_t target_shard = 0;
  uint16_t target_port = 0;
  uint64_t epoch = 0;
};

/// \brief Executes migrations against a placement table and client pool.
/// Thread-safe: per-session exclusion comes from the BeginMigration pin.
class MigrationCoordinator {
 public:
  MigrationCoordinator(PlacementTable& placement, ShardClientPool& pool)
      : placement_(placement), pool_(pool) {}

  /// Moves `id` from the source to the target shard (see file comment for
  /// the state machine). On success the placement points at the target; on
  /// failure the session still serves from the source unless the Status
  /// message says otherwise.
  Status Migrate(const std::string& id, const MigrationEndpoints& endpoints,
                 size_t drain_deadline_ms);

 private:
  PlacementTable& placement_;
  ShardClientPool& pool_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_MIGRATION_H_
