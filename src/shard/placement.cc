#include "shard/placement.h"

#include <chrono>

namespace visclean {
namespace shard {

Result<uint32_t> PlacementTable::AcquireRoute(const std::string& id,
                                              size_t deadline_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  for (;;) {
    auto it = slots_.find(id);
    if (it == slots_.end()) {
      return Status::NotFound("session '" + id + "' is not placed");
    }
    if (!it->second.migrating) {
      ++it->second.inflight;
      return it->second.shard_id;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::DeadlineExceeded("session '" + id +
                                      "' is still migrating");
    }
  }
}

void PlacementTable::ReleaseRoute(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return;  // Remove() raced the release; fine
  if (it->second.inflight > 0) --it->second.inflight;
  if (it->second.inflight == 0) cv_.notify_all();
}

Status PlacementTable::BeginMigration(const std::string& id,
                                      size_t drain_deadline_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Status::NotFound("session '" + id + "' is not placed");
  }
  if (it->second.migrating) {
    return Status::Unavailable("session '" + id + "' is already migrating");
  }
  it->second.migrating = true;  // pin: new routes block from here on
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(drain_deadline_ms);
  for (;;) {
    it = slots_.find(id);
    if (it == slots_.end()) {
      // Removed while we drained (Close raced the pin); nothing to migrate.
      return Status::NotFound("session '" + id + "' vanished during drain");
    }
    if (it->second.inflight == 0) return Status::Ok();
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      it->second.migrating = false;  // unpin so routes flow again
      cv_.notify_all();
      return Status::DeadlineExceeded("session '" + id +
                                      "' did not drain in-flight requests");
    }
  }
}

void PlacementTable::EndMigration(const std::string& id, uint32_t shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return;
  it->second.shard_id = shard_id;
  it->second.migrating = false;
  cv_.notify_all();
}

void PlacementTable::Assign(const std::string& id, uint32_t shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[id];
  slot.shard_id = shard_id;
  slot.migrating = false;
  cv_.notify_all();
}

void PlacementTable::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(id);
  cv_.notify_all();  // blocked acquirers re-probe and fail kNotFound
}

Result<uint32_t> PlacementTable::ShardOf(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Status::NotFound("session '" + id + "' is not placed");
  }
  return it->second.shard_id;
}

std::vector<std::string> PlacementTable::SessionsOn(uint32_t shard_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  for (const auto& [id, slot] : slots_) {
    if (slot.shard_id == shard_id) ids.push_back(id);
  }
  return ids;
}

size_t PlacementTable::CountOn(uint32_t shard_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, slot] : slots_) {
    if (slot.shard_id == shard_id) ++n;
  }
  return n;
}

size_t PlacementTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace shard
}  // namespace visclean
