#include "shard/migration.h"

#include "obs/trace.h"

namespace visclean {
namespace shard {

WireRequest ForwardEnvelope(uint32_t shard_id, uint64_t epoch,
                            const WireRequest& inner) {
  WireRequest envelope;
  envelope.type = WireRequestType::kForwarded;
  envelope.shard_id = shard_id;
  envelope.epoch = epoch;
  envelope.inner = EncodeRequestPayload(inner);
  // Stamp the caller's active trace so the shard-side worker joins it: the
  // router's span tree then covers the shard's execute spans too.
  const obs::TraceContext& ctx = obs::CurrentTrace();
  envelope.trace_id = ctx.trace_id;
  envelope.parent_span = ctx.span_id;
  return envelope;
}

Result<WireResponse> ForwardCall(ShardClientPool& pool, uint32_t shard_id,
                                 uint16_t port, uint64_t epoch,
                                 const WireRequest& inner) {
  Result<WireResponse> response =
      pool.Call(shard_id, port, ForwardEnvelope(shard_id, epoch, inner));
  if (!response.ok()) return response;
  if (response.value().type == WireResponseType::kError) {
    return Status(response.value().code, response.value().message);
  }
  return response;
}

Status MigrationCoordinator::Migrate(const std::string& id,
                                     const MigrationEndpoints& endpoints,
                                     size_t drain_deadline_ms) {
  if (endpoints.source_shard == endpoints.target_shard) {
    return Status::InvalidArgument("session '" + id +
                                   "' is already on the target shard");
  }

  // Pin + drain: returns only when nothing is in flight for this session.
  Status pinned = placement_.BeginMigration(id, drain_deadline_ms);
  if (!pinned.ok()) return pinned;

  // Export-with-remove: the source serializes and retires its copy; the
  // entry lock on the shard drains that side's queued waiters into the
  // migration tombstone.
  WireRequest export_req;
  export_req.type = WireRequestType::kExportState;
  export_req.session_id = id;
  export_req.remove = true;
  Result<WireResponse> exported =
      ForwardCall(pool_, endpoints.source_shard, endpoints.source_port,
                  endpoints.epoch, export_req);
  if (!exported.ok()) {
    placement_.EndMigration(id, endpoints.source_shard);  // abort in place
    return exported.status();
  }
  const std::string state = exported.value().state;

  WireRequest import_req;
  import_req.type = WireRequestType::kImportState;
  import_req.session_id = id;
  import_req.state = state;
  Result<WireResponse> imported =
      ForwardCall(pool_, endpoints.target_shard, endpoints.target_port,
                  endpoints.epoch, import_req);
  if (imported.ok()) {
    placement_.EndMigration(id, endpoints.target_shard);
    return Status::Ok();
  }

  // Import failed — put the session back where it came from.
  Result<WireResponse> restored =
      ForwardCall(pool_, endpoints.source_shard, endpoints.source_port,
                  endpoints.epoch, import_req);
  if (restored.ok()) {
    placement_.EndMigration(id, endpoints.source_shard);
    return Status::Unavailable("migration of '" + id +
                               "' failed and was rolled back: " +
                               imported.status().message());
  }
  placement_.Remove(id);
  return Status::Internal("session '" + id +
                          "' lost in migration: import failed (" +
                          imported.status().message() + ") and restore to " +
                          "source failed (" + restored.status().message() +
                          ")");
}

}  // namespace shard
}  // namespace visclean
