#include "shard/router.h"

#include <chrono>
#include <utility>

#include "common/strings.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/snapshot.h"

namespace visclean {
namespace shard {

namespace {

/// Transport-level failures that mean "the shard, not the request": the
/// router's cue to declare the peer dead and fail over. Application errors
/// (kNotFound, kInvalidArgument, ...) travel back to the client untouched.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kDeadlineExceeded;
}

/// Field-by-field sum: the router's kStats answer is the whole fleet.
void AddStats(ServeStats& into, const ServeStats& from) {
  into.sessions_created += from.sessions_created;
  into.steps += from.steps;
  into.answers += from.answers;
  into.snapshots += from.snapshots;
  into.evictions += from.evictions;
  into.restores_from_disk += from.restores_from_disk;
  into.rejected_capacity += from.rejected_capacity;
  into.rejected_inflight += from.rejected_inflight;
  into.rejected_session_queue += from.rejected_session_queue;
  into.detect_full_scans += from.detect_full_scans;
  into.detect_delta_updates += from.detect_delta_updates;
  into.erg_full_builds += from.erg_full_builds;
  into.erg_delta_updates += from.erg_delta_updates;
  into.sim_join_full += from.sim_join_full;
  into.sim_join_fallbacks += from.sim_join_fallbacks;
  into.sim_join_delta_syncs += from.sim_join_delta_syncs;
  into.em_infer_batches += from.em_infer_batches;
  into.em_infer_batch_items += from.em_infer_batch_items;
  into.em_infer_batch_rows += from.em_infer_batch_rows;
  into.pair_feature_batches += from.pair_feature_batches;
  into.pair_feature_batch_items += from.pair_feature_batch_items;
  into.pair_feature_batch_rows += from.pair_feature_batch_rows;
  into.knn_batches += from.knn_batches;
  into.knn_batch_items += from.knn_batch_items;
  into.knn_batch_rows += from.knn_batch_rows;
}

WireResponse AckResponse(uint64_t request_id) {
  WireResponse response;
  response.type = WireResponseType::kAck;
  response.request_id = request_id;
  return response;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options)
    : options_(std::move(options)),
      c_forwards_(registry_.GetCounter("router.forwards")),
      c_failovers_(registry_.GetCounter("router.failovers")),
      c_migrations_(registry_.GetCounter("router.migrations")),
      c_recovered_(registry_.GetCounter("router.recovered_sessions")),
      c_lost_(registry_.GetCounter("router.lost_sessions")),
      h_forward_ns_(registry_.GetHistogram("router.forward_ns")),
      pool_([&] {
        ClientOptions c = options_.client;
        if (c.io_timeout_ms == 0) c.io_timeout_ms = 5000;
        return c;
      }()),
      migrator_(placement_, pool_),
      ring_(options_.ring_replicas) {}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    VC_CHECK(!started_, "ShardRouter::Start called twice");
    for (const RouterShardConfig& config : options_.shards) {
      if (shards_.count(config.shard_id)) {
        return Status::InvalidArgument(
            StrFormat("duplicate shard id %u", config.shard_id));
      }
      ShardState state;
      state.port = config.port;
      state.snapshot_dir = config.snapshot_dir;
      shards_.emplace(config.shard_id, state);
      ring_.AddShard(config.shard_id);
    }
    started_ = true;
  }
  AnnounceEpoch();
  if (options_.rebalance_interval_ms > 0) {
    rebalance_thread_ = std::thread([this] { RebalanceLoop(); });
  }
  return Status::Ok();
}

void ShardRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    if (stop_) return;
    stop_ = true;
  }
  rebalance_cv_.notify_all();
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
}

Result<std::pair<uint16_t, uint64_t>> ShardRouter::PortAndEpoch(
    uint32_t shard_id, bool allow_draining) const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  auto it = shards_.find(shard_id);
  if (it == shards_.end()) {
    return Status::NotFound(StrFormat("unknown shard %u", shard_id));
  }
  if (!it->second.alive) {
    return Status::Unavailable(StrFormat("shard %u is dead", shard_id));
  }
  if (it->second.draining && !allow_draining) {
    return Status::Unavailable(StrFormat("shard %u is draining", shard_id));
  }
  return std::make_pair(it->second.port, epoch_);
}

Result<MigrationEndpoints> ShardRouter::ResolveTarget(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  Result<uint32_t> owner = ring_.OwnerOf(id);
  if (!owner.ok()) return owner.status();
  auto it = shards_.find(owner.value());
  VC_CHECK(it != shards_.end(), "ring member missing from shard map");
  MigrationEndpoints endpoints;
  endpoints.target_shard = owner.value();
  endpoints.target_port = it->second.port;
  endpoints.epoch = epoch_;
  return endpoints;
}

WireResponse ShardRouter::Handle(const WireRequest& request) {
  WireResponse response;
  switch (request.type) {
    case WireRequestType::kCreate:
    case WireRequestType::kRestore:
    case WireRequestType::kImportState:
      response = RouteAdmission(request);
      break;
    case WireRequestType::kStep:
    case WireRequestType::kAnswer:
    case WireRequestType::kGetStatus:
    case WireRequestType::kSnapshot:
    case WireRequestType::kClose:
    case WireRequestType::kExportState:
      response = RouteSession(request);
      break;
    case WireRequestType::kStats:
      response = AggregateStats(request);
      break;
    case WireRequestType::kMetrics:
      response = AggregateMetrics(request);
      break;
    case WireRequestType::kTraces:
      // The tracer is process-global on purpose: in-process fleets run the
      // router and its shards in one address space, so forwarded trace ids
      // land in the same ring and the router answers for everyone.
      response.type = WireResponseType::kTraces;
      response.metrics = obs::ExportTracesJson(obs::Tracer::Default().Captured());
      break;
    case WireRequestType::kJoinShard: {
      Status joined = JoinShard(request.shard_id,
                                static_cast<uint16_t>(request.port));
      response = joined.ok() ? AckResponse(request.request_id)
                             : ErrorResponse(request.request_id, joined);
      break;
    }
    case WireRequestType::kDrainShard: {
      Status drained = DrainShard(request.shard_id);
      response = drained.ok() ? AckResponse(request.request_id)
                              : ErrorResponse(request.request_id, drained);
      break;
    }
    case WireRequestType::kMigrateSession: {
      Status moved = MigrateSession(request.session_id, request.shard_id);
      response = moved.ok() ? AckResponse(request.request_id)
                            : ErrorResponse(request.request_id, moved);
      break;
    }
    case WireRequestType::kTopology:
      response.type = WireResponseType::kTopology;
      response.topology = Topology();
      break;
    case WireRequestType::kForwarded:
    case WireRequestType::kSetRole:
      response = ErrorResponse(
          request.request_id,
          Status::InvalidArgument(
              "shard control frames are not accepted by the router"));
      break;
  }
  response.request_id = request.request_id;
  return response;
}

WireResponse ShardRouter::RouteAdmission(const WireRequest& request) {
  obs::ScopedSpan span("router.route");
  Result<MigrationEndpoints> target = ResolveTarget(request.session_id);
  if (!target.ok()) return ErrorResponse(request.request_id, target.status());
  c_forwards_->Add(1);
#ifndef VISCLEAN_OBS_OFF
  uint64_t forward_start_ns = obs::MonotonicNs();
#endif
  Result<WireResponse> response =
      ForwardCall(pool_, target.value().target_shard,
                  target.value().target_port, target.value().epoch, request);
#ifndef VISCLEAN_OBS_OFF
  uint64_t forward_end_ns = obs::MonotonicNs();
  h_forward_ns_->Record(forward_end_ns - forward_start_ns);
  obs::RecordSpan("router.forward", forward_start_ns, forward_end_ns);
#endif
  if (!response.ok()) {
    return ErrorResponse(request.request_id, response.status());
  }
  placement_.Assign(request.session_id, target.value().target_shard);
  return response.value();
}

WireResponse ShardRouter::RouteSession(const WireRequest& request) {
  obs::ScopedSpan span("router.route");
  const std::string& id = request.session_id;
  Status last = Status::Internal("unroutable");
  for (int attempt = 0; attempt < 2; ++attempt) {
    Result<uint32_t> shard =
        placement_.AcquireRoute(id, options_.route_wait_deadline_ms);
    if (!shard.ok()) return ErrorResponse(request.request_id, shard.status());

    Result<std::pair<uint16_t, uint64_t>> endpoint =
        PortAndEpoch(shard.value());
    if (!endpoint.ok()) {
      placement_.ReleaseRoute(id);
      // Placed on a dead/vanished shard: recovery may still be re-homing it
      // on another thread. One retry re-resolves; after that the client
      // retries against a placement that has settled.
      last = endpoint.status();
      continue;
    }

    c_forwards_->Add(1);
#ifndef VISCLEAN_OBS_OFF
    uint64_t forward_start_ns = obs::MonotonicNs();
#endif
    Result<WireResponse> response =
        pool_.Call(shard.value(), endpoint.value().first,
                   ForwardEnvelope(shard.value(), endpoint.value().second,
                                   request));
#ifndef VISCLEAN_OBS_OFF
    uint64_t forward_end_ns = obs::MonotonicNs();
    h_forward_ns_->Record(forward_end_ns - forward_start_ns);
    obs::RecordSpan("router.forward", forward_start_ns, forward_end_ns);
#endif
    placement_.ReleaseRoute(id);

    if (response.ok()) {
      WireResponse unwrapped = std::move(response).value();
      if (unwrapped.type == WireResponseType::kError &&
          unwrapped.code == StatusCode::kUnavailable && attempt == 0) {
        // Stale placement (the session migrated under a router restart or a
        // stale epoch raced a membership change): re-resolve once.
        c_failovers_->Add(1);
        last = Status(unwrapped.code, unwrapped.message);
        continue;
      }
      if (unwrapped.type != WireResponseType::kError) {
        if (request.type == WireRequestType::kClose ||
            (request.type == WireRequestType::kExportState && request.remove)) {
          placement_.Remove(id);
        }
      }
      return unwrapped;
    }

    last = response.status();
    if (IsTransportFailure(last) && attempt == 0) {
      // Dead shard: declare it, re-home its sessions from disk, and retry —
      // the client sees one slow request instead of an error.
      c_failovers_->Add(1);
      (void)RecoverShard(shard.value());
      continue;
    }
    break;
  }
  return ErrorResponse(request.request_id, last);
}

WireResponse ShardRouter::AggregateStats(const WireRequest& request) {
  std::vector<std::pair<uint32_t, uint16_t>> targets;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    epoch = epoch_;
    for (const auto& [shard_id, state] : shards_) {
      if (state.alive) targets.emplace_back(shard_id, state.port);
    }
  }
  WireResponse response;
  response.type = WireResponseType::kStats;
  response.request_id = request.request_id;
  WireRequest stats_req;
  stats_req.type = WireRequestType::kStats;
  for (const auto& [shard_id, port] : targets) {
    Result<WireResponse> shard_stats =
        ForwardCall(pool_, shard_id, port, epoch, stats_req);
    // A shard that cannot answer contributes nothing; stats are advisory
    // and must not fail the whole fleet's answer.
    if (shard_stats.ok()) AddStats(response.stats, shard_stats.value().stats);
  }
  return response;
}

WireResponse ShardRouter::AggregateMetrics(const WireRequest& request) {
  std::vector<std::pair<uint32_t, uint16_t>> targets;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    epoch = epoch_;
    for (const auto& [shard_id, state] : shards_) {
      if (state.alive) targets.emplace_back(shard_id, state.port);
    }
  }
  // The fleet view: the router's own registry merged with every live
  // shard's. Merge is associative/commutative, so arrival order of the
  // shard snapshots cannot change the answer.
  obs::MetricsSnapshot merged = registry_.Snapshot();
  WireRequest metrics_req;
  metrics_req.type = WireRequestType::kMetrics;
  for (const auto& [shard_id, port] : targets) {
    Result<WireResponse> shard_metrics =
        ForwardCall(pool_, shard_id, port, epoch, metrics_req);
    // Same contract as kStats: an unreachable shard contributes nothing
    // rather than failing the whole scrape.
    if (!shard_metrics.ok()) continue;
    Result<obs::MetricsSnapshot> snapshot =
        obs::DecodeMetricsSnapshot(shard_metrics.value().metrics);
    if (snapshot.ok()) merged.Merge(snapshot.value());
  }
  WireResponse response;
  response.type = WireResponseType::kMetrics;
  response.request_id = request.request_id;
  response.metrics = obs::EncodeMetricsSnapshot(merged);
  return response;
}

Status ShardRouter::JoinShard(uint32_t shard_id, uint16_t port,
                              const std::string& snapshot_dir) {
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    auto it = shards_.find(shard_id);
    if (it != shards_.end() && it->second.alive && !it->second.draining) {
      return Status::InvalidArgument(
          StrFormat("shard %u is already a live member", shard_id));
    }
    ShardState state;
    state.port = port;
    state.snapshot_dir =
        snapshot_dir.empty() && it != shards_.end() ? it->second.snapshot_dir
                                                    : snapshot_dir;
    shards_[shard_id] = state;  // rejoin resets liveness and draining
    ring_.AddShard(shard_id);
    ++epoch_;
  }
  pool_.Drop(shard_id);  // stale sockets from a previous incarnation
  AnnounceEpoch();
  return Status::Ok();
}

Status ShardRouter::DrainShard(uint32_t shard_id) {
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    auto it = shards_.find(shard_id);
    if (it == shards_.end()) {
      return Status::NotFound(StrFormat("unknown shard %u", shard_id));
    }
    if (!it->second.alive) {
      return Status::Unavailable(StrFormat("shard %u is dead", shard_id));
    }
    if (it->second.draining) return Status::Ok();  // idempotent
    if (ring_.size() <= 1) {
      return Status::InvalidArgument(
          "cannot drain the last routable shard");
    }
    it->second.draining = true;
    ring_.RemoveShard(shard_id);
    ++epoch_;
  }
  AnnounceEpoch();

  size_t failed = 0;
  for (const std::string& id : placement_.SessionsOn(shard_id)) {
    Result<MigrationEndpoints> target = ResolveTarget(id);
    if (!target.ok()) {
      ++failed;
      continue;
    }
    if (MigrateSession(id, target.value().target_shard).ok()) {
      continue;
    }
    ++failed;
  }
  if (failed > 0) {
    return Status::Internal(
        StrFormat("%zu sessions failed to drain off shard %u", failed,
                  shard_id));
  }
  return Status::Ok();
}

Status ShardRouter::MigrateSession(const std::string& id,
                                   uint32_t target_shard) {
  Result<uint32_t> source = placement_.ShardOf(id);
  if (!source.ok()) return source.status();

  MigrationEndpoints endpoints;
  endpoints.source_shard = source.value();
  endpoints.target_shard = target_shard;
  Result<std::pair<uint16_t, uint64_t>> source_ep =
      PortAndEpoch(source.value(), /*allow_draining=*/true);
  if (!source_ep.ok()) return source_ep.status();
  Result<std::pair<uint16_t, uint64_t>> target_ep =
      PortAndEpoch(target_shard, /*allow_draining=*/false);
  if (!target_ep.ok()) return target_ep.status();
  endpoints.source_port = source_ep.value().first;
  endpoints.target_port = target_ep.value().first;
  endpoints.epoch = target_ep.value().second;

  Status moved =
      migrator_.Migrate(id, endpoints, options_.migration_drain_deadline_ms);
  if (moved.ok()) c_migrations_->Add(1);
  return moved;
}

WireTopology ShardRouter::Topology() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  WireTopology topology;
  topology.epoch = epoch_;
  for (const auto& [shard_id, state] : shards_) {
    WireShardStatus row;
    row.shard_id = shard_id;
    row.port = state.port;
    row.alive = state.alive;
    row.draining = state.draining;
    row.sessions = placement_.CountOn(shard_id);
    topology.shards.push_back(row);
  }
  return topology;
}

Status ShardRouter::RecoverShard(uint32_t shard_id) {
  std::string snapshot_dir;
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    auto it = shards_.find(shard_id);
    if (it == shards_.end()) {
      return Status::NotFound(StrFormat("unknown shard %u", shard_id));
    }
    if (!it->second.alive) return Status::Ok();  // already declared
    it->second.alive = false;
    ring_.RemoveShard(shard_id);
    ++epoch_;
    snapshot_dir = it->second.snapshot_dir;
  }
  pool_.Drop(shard_id);
  AnnounceEpoch();

  for (const std::string& id : placement_.SessionsOn(shard_id)) {
    Status rehomed = RehomeFromDisk(id, snapshot_dir);
    if (rehomed.ok()) {
      c_recovered_->Add(1);
    } else {
      // No usable snapshot: forget the placement so clients get an honest
      // kNotFound instead of forwards into a corpse.
      placement_.Remove(id);
      c_lost_->Add(1);
    }
  }
  return Status::Ok();
}

Status ShardRouter::RehomeFromDisk(const std::string& id,
                                   const std::string& dir) {
  if (dir.empty()) {
    return Status::IoError("dead shard has no snapshot directory");
  }
  // The newest persist_progress checkpoint (written after every successful
  // Step and Answer, same file eviction uses).
  Result<SessionSnapshotState> state = ReadSnapshotFile(dir + "/" + id +
                                                        ".snap");
  if (!state.ok()) return state.status();

  Result<MigrationEndpoints> target = ResolveTarget(id);
  if (!target.ok()) return target.status();

  WireRequest import_req;
  import_req.type = WireRequestType::kImportState;
  import_req.session_id = id;
  import_req.state = EncodeSnapshot(state.value());
  Result<WireResponse> imported =
      ForwardCall(pool_, target.value().target_shard,
                  target.value().target_port, target.value().epoch,
                  import_req);
  if (!imported.ok()) return imported.status();
  placement_.Assign(id, target.value().target_shard);
  return Status::Ok();
}

void ShardRouter::AnnounceEpoch() {
  std::vector<std::pair<uint32_t, std::pair<uint16_t, uint64_t>>> targets;
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    for (const auto& [shard_id, state] : shards_) {
      if (state.alive) {
        targets.emplace_back(shard_id, std::make_pair(state.port, epoch_));
      }
    }
  }
  for (const auto& [shard_id, ep] : targets) {
    WireRequest role;
    role.type = WireRequestType::kSetRole;
    role.shard_id = shard_id;
    role.epoch = ep.second;
    // Best-effort: an unreachable shard learns the epoch from its first
    // forward instead (kForwarded carries it and newer epochs are adopted).
    (void)pool_.Call(shard_id, ep.first, role);
  }
}

size_t ShardRouter::Rebalance() {
  struct Load {
    uint32_t shard_id = 0;
    uint16_t port = 0;
    uint64_t delta = 0;
  };
  std::vector<Load> loads;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    epoch = epoch_;
    for (const auto& [shard_id, state] : shards_) {
      if (!state.alive || state.draining) continue;
      loads.push_back({shard_id, state.port, 0});
    }
  }
  if (loads.size() < 2) return 0;

  // Activity is polled through the shard's metrics snapshot — the same
  // serve.steps / serve.answers counters a kMetrics scrape exports — so the
  // rebalance decision and the exported metrics read one source of truth
  // and cannot drift. kStats remains as a fallback for a mixed fleet whose
  // shard predates the kMetrics frame (a v2 peer).
  WireRequest metrics_req;
  metrics_req.type = WireRequestType::kMetrics;
  WireRequest stats_req;
  stats_req.type = WireRequestType::kStats;
  for (Load& load : loads) {
    uint64_t activity = 0;
    Result<WireResponse> metrics =
        ForwardCall(pool_, load.shard_id, load.port, epoch, metrics_req);
    if (metrics.ok()) {
      Result<obs::MetricsSnapshot> snapshot =
          obs::DecodeMetricsSnapshot(metrics.value().metrics);
      if (!snapshot.ok()) return 0;  // corrupt answer: treat as unstable
      const auto& counters = snapshot.value().counters;
      auto steps = counters.find("serve.steps");
      auto answers = counters.find("serve.answers");
      if (steps != counters.end()) activity += steps->second;
      if (answers != counters.end()) activity += answers->second;
    } else {
      Result<WireResponse> stats =
          ForwardCall(pool_, load.shard_id, load.port, epoch, stats_req);
      if (!stats.ok()) return 0;  // unstable fleet: let recovery settle first
      activity = stats.value().stats.steps + stats.value().stats.answers;
    }
    std::lock_guard<std::mutex> lock(topo_mu_);
    auto it = shards_.find(load.shard_id);
    if (it == shards_.end()) return 0;
    load.delta = activity - std::min(activity, it->second.last_activity);
    it->second.last_activity = activity;
  }

  const Load* hot = &loads[0];
  const Load* cold = &loads[0];
  for (const Load& load : loads) {
    if (load.delta > hot->delta) hot = &load;
    if (load.delta < cold->delta) cold = &load;
  }
  // The occupancy signal: only shuffle sessions when the hottest shard is
  // doing materially more recent work than the coldest.
  if (hot->shard_id == cold->shard_id) return 0;
  double threshold =
      options_.hot_ratio * static_cast<double>(std::max<uint64_t>(
                               cold->delta, 1));
  if (static_cast<double>(hot->delta) <= threshold) return 0;

  size_t moved = 0;
  for (const std::string& id : placement_.SessionsOn(hot->shard_id)) {
    if (moved >= options_.max_migrations_per_rebalance) break;
    if (MigrateSession(id, cold->shard_id).ok()) ++moved;
  }
  return moved;
}

void ShardRouter::RebalanceLoop() {
  std::unique_lock<std::mutex> lock(rebalance_mu_);
  while (!stop_) {
    rebalance_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.rebalance_interval_ms));
    if (stop_) break;
    lock.unlock();
    (void)Rebalance();
    lock.lock();
  }
}

uint64_t ShardRouter::epoch() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  return epoch_;
}

RouterStats ShardRouter::router_stats() const {
  RouterStats stats;
  stats.forwards = c_forwards_->Value();
  stats.failovers = c_failovers_->Value();
  stats.migrations = c_migrations_->Value();
  stats.recovered_sessions = c_recovered_->Value();
  stats.lost_sessions = c_lost_->Value();
  return stats;
}

}  // namespace shard
}  // namespace visclean
