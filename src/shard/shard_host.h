// ShardHost: one shard of the two-tier stack, bundled for convenience.
//
// A shard is just a SessionManager behind a VisCleanServer speaking the
// shard dialect (SessionManagerHandler: local execution plus the router's
// kForwarded/kSetRole control surface). Production runs one ShardHost per
// process (examples/serve_driver.cc --act=shard); the tests and the scaling
// bench run several in one process, which exercises the identical TCP path
// — nothing ever shortcuts in-process.
//
// For crash recovery the host defaults persist_progress on whenever a
// snapshot_dir is configured: the router re-homes a dead shard's sessions
// from those checkpoint files, so a shard without them is a shard whose
// sessions die with it.
#ifndef VISCLEAN_SHARD_SHARD_HOST_H_
#define VISCLEAN_SHARD_SHARD_HOST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "serve/wire.h"

namespace visclean {
namespace shard {

/// \brief Shard configuration.
struct ShardHostOptions {
  uint32_t shard_id = 0;
  /// Serving-layer knobs. snapshot_dir should be set (and unique per shard)
  /// for eviction + crash recovery; persist_progress is forced on when it
  /// is, unless `no_persist_progress`.
  ServeOptions serve;
  /// Socket front-end knobs (port 0 = ephemeral, read back with port()).
  ServerOptions server;
  /// Opt out of the persist_progress default (benchmarks that measure raw
  /// throughput without the checkpoint write).
  bool no_persist_progress = false;
};

/// \brief SessionManager + handler + server, wired as one shard.
class ShardHost {
 public:
  explicit ShardHost(ShardHostOptions options);

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Datasets must be registered before sessions arrive (oracle outlives
  /// the host).
  Status RegisterDataset(const DirtyDataset* oracle);

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }

  uint16_t port() const { return server_.port(); }
  uint32_t shard_id() const { return options_.shard_id; }
  const std::string& snapshot_dir() const {
    return options_.serve.snapshot_dir;
  }

  SessionManager& manager() { return manager_; }
  VisCleanServer& server() { return server_; }

 private:
  ShardHostOptions options_;
  SessionManager manager_;
  SessionManagerHandler handler_;
  VisCleanServer server_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_SHARD_HOST_H_
