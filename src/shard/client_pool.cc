#include "shard/client_pool.h"

#include <utility>

namespace visclean {
namespace shard {

Result<WireResponse> ShardClientPool::Call(uint32_t shard_id, uint16_t port,
                                           const WireRequest& request) {
  std::unique_ptr<Client> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(shard_id);
    if (it != idle_.end() && !it->second.empty()) {
      client = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  if (!client) {
    client = std::make_unique<Client>(options_);
    Status connected = client->Connect(port);
    if (!connected.ok()) return connected;
  }
  Result<WireResponse> response = client->Call(request);
  if (response.ok() && client->connected()) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_[shard_id].push_back(std::move(client));
  }
  // else: the client already disconnected itself (deadline / framing); let
  // it destruct instead of caching a dead socket.
  return response;
}

void ShardClientPool::Drop(uint32_t shard_id) {
  std::vector<std::unique_ptr<Client>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(shard_id);
    if (it == idle_.end()) return;
    doomed = std::move(it->second);
    idle_.erase(it);
  }
  // Sockets close outside the lock.
}

size_t ShardClientPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [shard, clients] : idle_) n += clients.size();
  return n;
}

}  // namespace shard
}  // namespace visclean
