#include "shard/ring.h"

#include "common/strings.h"

namespace visclean {
namespace shard {

namespace {

/// FNV-1a, 64-bit, with a splitmix64-style finalizer. Stable across builds
/// and platforms — placement must not depend on std::hash, whose value is
/// implementation-defined. Raw FNV-1a has weak avalanche in the high bits
/// for short, similar keys ("shard/0#1", "shard/0#2", ...), which clusters
/// ring points and can starve a shard; the finalizer spreads them.
uint64_t Fnv1a(const std::string& key) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::string PointKey(uint32_t shard_id, size_t replica) {
  return StrFormat("shard/%u#%zu", shard_id, replica);
}

}  // namespace

HashRing::HashRing(size_t replicas) : replicas_(replicas == 0 ? 1 : replicas) {}

void HashRing::AddShard(uint32_t shard_id) {
  if (!shards_.insert(shard_id).second) return;
  for (size_t r = 0; r < replicas_; ++r) {
    // Collisions between distinct shards' points are astronomically rare on
    // a 64-bit circle; first writer keeps the point, which is still a
    // deterministic assignment.
    points_.emplace(Fnv1a(PointKey(shard_id, r)), shard_id);
  }
}

void HashRing::RemoveShard(uint32_t shard_id) {
  if (shards_.erase(shard_id) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == shard_id) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<uint32_t> HashRing::OwnerOf(const std::string& key) const {
  if (points_.empty()) {
    return Status::Unavailable("hash ring has no routable shards");
  }
  auto it = points_.lower_bound(Fnv1a(key));
  if (it == points_.end()) it = points_.begin();  // wrap the circle
  return it->second;
}

std::vector<uint32_t> HashRing::members() const {
  return std::vector<uint32_t>(shards_.begin(), shards_.end());
}

}  // namespace shard
}  // namespace visclean
