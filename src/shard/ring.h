// Consistent-hash ring assigning session ids to shards.
//
// Each shard contributes `replicas` virtual points (FNV-1a of
// "shard/<id>#<replica>") on a 64-bit circle; a session id hashes to a
// point and is owned by the first shard point clockwise from it. Adding or
// removing one shard therefore only remaps the sessions whose arcs touch
// that shard's points — the property the router relies on so a membership
// change does not re-home the whole fleet.
//
// The ring holds only *routable* shards: the router removes a shard's
// points the moment it is drained or declared dead, so OwnerOf never
// nominates a shard that cannot accept a session. Not thread-safe; the
// router guards it with its topology mutex.
#ifndef VISCLEAN_SHARD_RING_H_
#define VISCLEAN_SHARD_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace visclean {
namespace shard {

/// \brief Consistent-hash ring over shard ids.
class HashRing {
 public:
  /// `replicas` virtual points per shard. More points smooth the load split
  /// at the cost of a bigger map; 64 keeps the max/min arc ratio tight for
  /// the handful of shards a router fronts.
  explicit HashRing(size_t replicas = 64);

  /// Adds `shard_id`'s points. Adding a member twice is a no-op.
  void AddShard(uint32_t shard_id);

  /// Removes `shard_id`'s points (no-op when absent). Sessions that hashed
  /// to its arcs now fall through to the next shard clockwise.
  void RemoveShard(uint32_t shard_id);

  bool Contains(uint32_t shard_id) const { return shards_.count(shard_id); }

  /// The shard owning `key`. Fails (kUnavailable) on an empty ring.
  Result<uint32_t> OwnerOf(const std::string& key) const;

  /// Member shard ids, ascending.
  std::vector<uint32_t> members() const;

  size_t size() const { return shards_.size(); }

 private:
  size_t replicas_;
  std::map<uint64_t, uint32_t> points_;  ///< ring point -> owning shard
  std::set<uint32_t> shards_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_RING_H_
