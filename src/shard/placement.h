// The router's authoritative session→shard map, with the synchronization
// that makes live migration invisible to clients.
//
// Every session request a router worker forwards holds a route reference
// (AcquireRoute/ReleaseRoute) for the duration of the forward. A migration
// pins the session first (BeginMigration): new AcquireRoute callers block,
// and the migrator waits until the in-flight references drain to zero. Only
// then is the session exported from its source shard — so no request can
// observe the session mid-copy. EndMigration flips the placement and wakes
// the blocked workers, which forward to the new shard as if nothing
// happened. Because the server executes one request per connection at a
// time and workers block *before* forwarding, per-connection order is
// preserved across the handoff: no request is dropped or reordered.
//
// One mutex + condvar for the whole table. Route acquisition is a map probe
// and the critical sections are tiny; contention is negligible next to the
// forwarded request itself.
#ifndef VISCLEAN_SHARD_PLACEMENT_H_
#define VISCLEAN_SHARD_PLACEMENT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace visclean {
namespace shard {

/// \brief Session→shard placement with migration pinning.
class PlacementTable {
 public:
  /// Resolves `id`'s shard and registers an in-flight route reference the
  /// caller must drop with ReleaseRoute. Blocks while `id` is migrating, up
  /// to `deadline_ms` (kDeadlineExceeded when the migration outlasts it).
  /// Unplaced ids fail kNotFound without blocking.
  Result<uint32_t> AcquireRoute(const std::string& id, size_t deadline_ms);

  /// Drops a route reference taken by AcquireRoute.
  void ReleaseRoute(const std::string& id);

  /// Pins `id` for migration: new AcquireRoute callers block, and this call
  /// waits until the in-flight references drain to zero (up to
  /// `drain_deadline_ms`). Fails kNotFound when unplaced, kUnavailable when
  /// already migrating, kDeadlineExceeded when in-flight requests do not
  /// drain in time (the pin is released again in that case).
  Status BeginMigration(const std::string& id, size_t drain_deadline_ms);

  /// Completes a migration begun with BeginMigration: places `id` on
  /// `shard_id` (pass the old shard to abort in place) and wakes blocked
  /// AcquireRoute callers.
  void EndMigration(const std::string& id, uint32_t shard_id);

  /// Inserts or overwrites a placement (new sessions, recovery re-homing).
  void Assign(const std::string& id, uint32_t shard_id);

  /// Forgets `id` entirely, waking any blocked AcquireRoute callers (they
  /// fail kNotFound). Used for Close and for sessions lost in recovery.
  void Remove(const std::string& id);

  /// The current placement without blocking or pinning (kNotFound when
  /// unplaced). Migration-oblivious; use AcquireRoute to forward requests.
  Result<uint32_t> ShardOf(const std::string& id) const;

  /// Ids currently placed on `shard_id`, ascending.
  std::vector<std::string> SessionsOn(uint32_t shard_id) const;

  size_t CountOn(uint32_t shard_id) const;
  size_t size() const;

 private:
  struct Slot {
    uint32_t shard_id = 0;
    size_t inflight = 0;    ///< route references currently held
    bool migrating = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Slot> slots_;
};

}  // namespace shard
}  // namespace visclean

#endif  // VISCLEAN_SHARD_PLACEMENT_H_
