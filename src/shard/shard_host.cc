#include "shard/shard_host.h"

#include <utility>

namespace visclean {
namespace shard {

namespace {

ServeOptions WithRecoveryDefaults(ShardHostOptions& options) {
  if (!options.serve.snapshot_dir.empty() && !options.no_persist_progress) {
    options.serve.persist_progress = true;
  }
  return options.serve;
}

/// The shard's IO counters land in its manager's registry (unless the
/// caller wired an explicit one), so one kMetrics answer covers net.* and
/// engine metrics together — and multi-shard test fleets stay separable.
ServerOptions WithManagerRegistry(ServerOptions server,
                                  SessionManager& manager) {
  if (server.registry == nullptr) server.registry = &manager.registry();
  return server;
}

}  // namespace

ShardHost::ShardHost(ShardHostOptions options)
    : options_(std::move(options)),
      manager_(WithRecoveryDefaults(options_)),
      handler_(manager_),
      server_(handler_, WithManagerRegistry(options_.server, manager_)) {}

Status ShardHost::RegisterDataset(const DirtyDataset* oracle) {
  return manager_.RegisterDataset(oracle);
}

}  // namespace shard
}  // namespace visclean
