#include "shard/shard_host.h"

#include <utility>

namespace visclean {
namespace shard {

namespace {

ServeOptions WithRecoveryDefaults(ShardHostOptions& options) {
  if (!options.serve.snapshot_dir.empty() && !options.no_persist_progress) {
    options.serve.persist_progress = true;
  }
  return options.serve;
}

}  // namespace

ShardHost::ShardHost(ShardHostOptions options)
    : options_(std::move(options)),
      manager_(WithRecoveryDefaults(options_)),
      handler_(manager_),
      server_(handler_, options_.server) {}

Status ShardHost::RegisterDataset(const DirtyDataset* oracle) {
  return manager_.RegisterDataset(oracle);
}

}  // namespace shard
}  // namespace visclean
