#include "core/paper_options.h"

namespace visclean {

double DefaultDetectionDirtyThreshold(const std::string& dataset) {
  if (dataset == "D1") return 0.5;
  if (dataset == "D2") return 0.5;
  return 0.35;  // D3 (and unknown): smallest tables, fallback scans are
                // nearly free — the conservative end of the flat region.
}

double DefaultErgDirtyThreshold(const std::string& dataset) {
  return DefaultDetectionDirtyThreshold(dataset);
}

SessionOptions PaperSessionOptions(const std::string& selector,
                                   const std::string& dataset) {
  SessionOptions options;
  options.k = 10;
  options.budget = 15;
  options.selector = selector;
  options.forest.num_trees = 12;
  if (!dataset.empty()) {
    options.detection_dirty_threshold = DefaultDetectionDirtyThreshold(dataset);
    options.erg_dirty_threshold = DefaultErgDirtyThreshold(dataset);
  }
  return options;
}

}  // namespace visclean
