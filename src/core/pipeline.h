// The staged cleaning pipeline: one iteration of the paper's Fig. 6 loop is
// an ordered list of PipelineStage objects run over a shared EngineContext.
//
//   composite: detect -> train -> generate -> assemble -> benefit -> select
//              -> ask -> apply
//   single:    detect -> train -> generate -> ask(single) -> apply
//
// Both questioning strategies are stage *configurations* (MakeStages), not
// separate code paths: they share detection, training, generation and the
// machine auto-merge, and differ only in how questions reach the user.
// Stages are stateless between iterations — everything lives in the context
// — so any stage can be swapped, instrumented, or parallelized in isolation
// (BenefitStage already fans out to the context's ThreadPool).
#ifndef VISCLEAN_CORE_PIPELINE_H_
#define VISCLEAN_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine_context.h"

namespace visclean {

/// \brief Fig. 18 component bucket a stage's wall time is charged to.
enum class StageBucket { kDetect, kTrain, kBenefit, kSelect, kApply };

/// \brief Which half of the interaction round a stage belongs to.
///
/// kPlan stages run machine-side work up to (and including) choosing the
/// next composite question; kResolve stages consume the user's answers and
/// fold repairs. The split is the serving boundary: SessionManager::Step
/// runs the plan half, returns to the (possibly minutes-long) user, and
/// SessionManager::Answer later runs the resolve half. Plan stages must not
/// net-mutate durable session state other than the replay-checkpointed
/// counters (see VisCleanSession::PlanIteration), which is what makes a
/// pending iteration deterministically replayable after snapshot restore.
enum class StagePhase { kPlan, kResolve };

/// \brief One step of the cleaning loop.
///
/// Stages hold no per-run state; Run() reads and writes the context only.
/// The driver (VisCleanSession) times each Run() call and charges it to the
/// stage's declared bucket.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  /// Stable lowercase identifier ("detect", "train", ...), recorded in
  /// IterationTrace::stage_times.
  virtual const char* name() const = 0;
  /// The ComponentTimes bucket this stage charges.
  virtual StageBucket bucket() const = 0;
  /// The interaction half this stage runs in (see StagePhase).
  virtual StagePhase phase() const { return StagePhase::kPlan; }
  virtual Status Run(EngineContext& ctx) = 0;
};

/// Error detection: token blocking for duplicate candidates, kNN missing-
/// value and outlier detectors on the Y column.
class DetectStage : public PipelineStage {
 public:
  const char* name() const override { return "detect"; }
  StageBucket bucket() const override { return StageBucket::kDetect; }
  Status Run(EngineContext& ctx) override;
};

/// EM model fine-tuning on the (thinned) candidate pairs + rescoring.
class TrainStage : public PipelineStage {
 public:
  const char* name() const override { return "train"; }
  StageBucket bucket() const override { return StageBucket::kTrain; }
  Status Run(EngineContext& ctx) override;
};

/// Question generation (Algorithm 1): uncertain T-questions via active
/// learning, A-questions from clusters + witnessed machine merges. Needs
/// TrainStage's scores, hence a separate stage; its time is part of the
/// paper's "Detect Errors" component.
class GenerateStage : public PipelineStage {
 public:
  const char* name() const override { return "generate"; }
  StageBucket bucket() const override { return StageBucket::kDetect; }
  Status Run(EngineContext& ctx) override;
};

/// Question assembly + ERG construction (Definition 2.1): folds the
/// iteration's QuestionSet into the QuestionStore pools and publishes the
/// canonical ERG snapshot into ctx.erg — incrementally via the ErgCache
/// (ErgMode::kAuto) or from scratch (kFull), bit-identically. Charged to
/// the select bucket: this is the select-stage work the paper's Fig. 18
/// shows growing with table size.
class AssembleStage : public PipelineStage {
 public:
  const char* name() const override { return "assemble"; }
  StageBucket bucket() const override { return StageBucket::kSelect; }
  Status Run(EngineContext& ctx) override;
};

/// Benefit estimation (Definition 5.1) over the assembled ERG. Fans
/// speculative repairs out to ctx.pool when the session runs with
/// threads > 1; results are bit-identical to the serial path.
class BenefitStage : public PipelineStage {
 public:
  const char* name() const override { return "benefit"; }
  StageBucket bucket() const override { return StageBucket::kBenefit; }
  Status Run(EngineContext& ctx) override;
};

/// CQG selection via ctx.selector, with the vertex-only fallback composite
/// when no edges remain.
class SelectStage : public PipelineStage {
 public:
  const char* name() const override { return "select"; }
  StageBucket bucket() const override { return StageBucket::kSelect; }
  Status Run(EngineContext& ctx) override;
};

/// Composite user interaction: asks the selected CQG (edge questions with
/// A-question follow-ups, vertex M-/O-questions) and applies the answers.
class AskStage : public PipelineStage {
 public:
  const char* name() const override { return "ask"; }
  StageBucket bucket() const override { return StageBucket::kApply; }
  StagePhase phase() const override { return StagePhase::kResolve; }
  Status Run(EngineContext& ctx) override;
};

/// Single-question baseline interaction (Section VII, algorithm (vi)):
/// m isolated questions per iteration, m/4 from each candidate set.
class SingleAskStage : public PipelineStage {
 public:
  const char* name() const override { return "ask"; }
  StageBucket bucket() const override { return StageBucket::kApply; }
  StagePhase phase() const override { return StagePhase::kResolve; }
  Status Run(EngineContext& ctx) override;
};

/// Machine auto-merge of confident EM clusters (gated on user labels) —
/// the non-interactive tail of "repair errors + refresh".
class ApplyStage : public PipelineStage {
 public:
  const char* name() const override { return "apply"; }
  StageBucket bucket() const override { return StageBucket::kApply; }
  StagePhase phase() const override { return StagePhase::kResolve; }
  Status Run(EngineContext& ctx) override;
};

/// The stage list for a questioning strategy (see file comment).
std::vector<std::unique_ptr<PipelineStage>> MakeStages(
    QuestionStrategy strategy);

/// The column whose attribute-level duplicates hurt this query: a
/// categorical X axis, or — as in Q7, where the predicate "Venue = 'SIGMOD'"
/// silently drops synonym rows — the first categorical column a WHERE
/// conjunct references. BenefitOptions::kNoColumn when neither exists.
size_t XColumnOrNoColumn(const EngineContext& ctx);

}  // namespace visclean

#endif  // VISCLEAN_CORE_PIPELINE_H_
