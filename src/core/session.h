// VisCleanSession: thin driver for the interactive-cleaning loop of Fig. 6.
//
// The loop itself is a staged pipeline (src/core/pipeline.h) over a shared
// EngineContext (src/core/engine_context.h):
//
//   (1) visualization specification  -> constructor (query + dirty table)
//   (2) initialization               -> Initialize (selector, pool, stages)
//   (3)-(6) detect / train / generate / benefit / select / ask / apply
//                                    -> the stage list, one Run() each
//   (7) refresh visualization        -> CurrentVis / trace EMD
//
// The session owns the context and the stage list; both the composite and
// the Single-question baseline strategies are stage configurations
// (MakeStages), so every component is shared.
#ifndef VISCLEAN_CORE_SESSION_H_
#define VISCLEAN_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine_context.h"
#include "core/pipeline.h"
#include "datagen/generator.h"
#include "dist/vis_data.h"

namespace visclean {

class ThreadPool;

/// \brief One end-to-end interactive cleaning run.
class VisCleanSession {
 public:
  /// `oracle` provides both the simulated user's ground truth and the
  /// reference visualization Q(D_g); it must outlive the session. The
  /// session works on its own copy of oracle->dirty.
  VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                  SessionOptions options = {}, UserOptions user_options = {},
                  UserCostModel cost_model = {});
  ~VisCleanSession();

  /// Step (2): resolves the selector, builds the stage list for the
  /// configured strategy, and (for options.threads > 1) starts the worker
  /// pool. Must be called once before RunIteration/Run.
  Status Initialize();

  /// One interaction round: runs every pipeline stage over the context,
  /// recording per-stage wall time. Returns the iteration's trace.
  Result<IterationTrace> RunIteration();

  /// Runs until the budget is exhausted; returns all traces (including an
  /// iteration-0 entry holding the initial EMD).
  Result<std::vector<IterationTrace>> Run();

  /// Current (progressively cleaned) visualization.
  Result<VisData> CurrentVis() const;
  /// The ground-truth visualization Q(D_g).
  Result<VisData> GroundTruthVis() const;
  /// EMD between the two above.
  double CurrentEmd() const;

  const Table& table() const { return ctx_.table; }
  const Erg& erg() const { return ctx_.erg; }
  const QuestionSet& questions() const { return ctx_.questions; }
  /// The full stage blackboard (read-only; tests and benches introspect it).
  const EngineContext& context() const { return ctx_; }
  /// Mutable blackboard access for tests and benches that inject external
  /// table churn (e.g. the differential suite's repair storms) between
  /// iterations. Production callers never mutate the context directly.
  EngineContext& mutable_context() { return ctx_; }
  /// The configured stage list (empty before Initialize()).
  const std::vector<std::unique_ptr<PipelineStage>>& stages() const {
    return stages_;
  }

 private:
  const DirtyDataset* oracle_;
  EngineContext ctx_;
  std::vector<std::unique_ptr<PipelineStage>> stages_;
  std::unique_ptr<ThreadPool> pool_;  ///< lives behind ctx_.pool

  size_t iteration_ = 0;
  bool initialized_ = false;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_SESSION_H_
