// VisCleanSession: thin driver for the interactive-cleaning loop of Fig. 6.
//
// The loop itself is a staged pipeline (src/core/pipeline.h) over a shared
// EngineContext (src/core/engine_context.h):
//
//   (1) visualization specification  -> constructor (query + dirty table)
//   (2) initialization               -> Initialize (selector, pool, stages)
//   (3)-(6) detect / train / generate / benefit / select / ask / apply
//                                    -> the stage list, one Run() each
//   (7) refresh visualization        -> CurrentVis / trace EMD
//
// The session owns the context and the stage list; both the composite and
// the Single-question baseline strategies are stage configurations
// (MakeStages), so every component is shared.
#ifndef VISCLEAN_CORE_SESSION_H_
#define VISCLEAN_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine_context.h"
#include "core/pipeline.h"
#include "core/session_state.h"
#include "datagen/generator.h"
#include "dist/vis_data.h"

namespace visclean {

class KernelScheduler;
class ThreadPool;

/// \brief What PlanIteration hands back while the user is deciding: a
/// summary of the question now awaiting answers. The serving layer returns
/// this from Step; the full CQG/QuestionSet stays readable through
/// context() for callers that want to render it.
struct PendingInteraction {
  size_t iteration = 0;  ///< 1-based index of the round now in flight
  QuestionStrategy strategy = QuestionStrategy::kComposite;
  double cqg_benefit = 0.0;     ///< estimated benefit (composite only)
  size_t cqg_vertices = 0;      ///< |V| of the selected CQG (composite only)
  size_t cqg_edges = 0;         ///< |E| of the selected CQG (composite only)
  size_t pool_questions = 0;    ///< detected questions available this round
};

/// \brief One end-to-end interactive cleaning run.
class VisCleanSession {
 public:
  /// `oracle` provides both the simulated user's ground truth and the
  /// reference visualization Q(D_g); it must outlive the session. The
  /// session works on its own copy of oracle->dirty.
  VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                  SessionOptions options = {}, UserOptions user_options = {},
                  UserCostModel cost_model = {});
  ~VisCleanSession();

  /// Step (2): resolves the selector, builds the stage list for the
  /// configured strategy, and (for options.threads > 1) starts the worker
  /// pool. Must be called once before RunIteration/Run.
  Status Initialize();

  /// One interaction round: runs every pipeline stage over the context,
  /// recording per-stage wall time. Returns the iteration's trace.
  /// Equivalent to PlanIteration() + ResolveIteration().
  Result<IterationTrace> RunIteration();

  /// The machine half of one round: runs the StagePhase::kPlan stages up to
  /// (and including) selecting the next question, then parks with
  /// pending() == true. Checkpoints the retrain counter and selector RNG at
  /// entry so a snapshot taken while pending can deterministically replay
  /// this plan after restore (see RestoreState).
  Result<PendingInteraction> PlanIteration();

  /// The interaction half: runs the StagePhase::kResolve stages (ask the
  /// pending question, apply answers, machine auto-merge), refreshes the
  /// EMD, compacts the journal, and returns the completed round's trace.
  /// Requires pending() == true.
  Result<IterationTrace> ResolveIteration();

  /// Runs until the budget is exhausted; returns all traces (including an
  /// iteration-0 entry holding the initial EMD).
  Result<std::vector<IterationTrace>> Run();

  /// Current (progressively cleaned) visualization.
  Result<VisData> CurrentVis() const;
  /// The ground-truth visualization Q(D_g).
  Result<VisData> GroundTruthVis() const;
  /// EMD between the two above.
  double CurrentEmd() const;

  const Table& table() const { return ctx_.table; }
  const Erg& erg() const { return ctx_.erg; }
  const QuestionSet& questions() const { return ctx_.questions; }
  /// The full stage blackboard (read-only; tests and benches introspect it).
  const EngineContext& context() const { return ctx_; }
  /// Mutable blackboard access for tests and benches that inject external
  /// table churn (e.g. the differential suite's repair storms) between
  /// iterations. Production callers never mutate the context directly.
  EngineContext& mutable_context() { return ctx_; }
  /// The configured stage list (empty before Initialize()).
  const std::vector<std::unique_ptr<PipelineStage>>& stages() const {
    return stages_;
  }

  /// Completed-or-in-flight round count (equals the last trace's iteration).
  size_t iteration() const { return iteration_; }
  /// True between PlanIteration and ResolveIteration: a question is out.
  bool pending() const { return pending_; }
  /// True once the configured budget of rounds has fully resolved.
  bool finished() const { return !pending_ && iteration_ >= ctx_.options.budget; }

  /// Lends an externally owned worker pool to this session (the serving
  /// layer's shared pool). Must be called before Initialize(); overrides the
  /// options.threads session-owned pool. The pool must outlive the session.
  void SetExternalPool(ThreadPool* pool);

  /// Lends a cross-session kernel scheduler (the serving layer's
  /// KernelBatcher) to this session. Must be called before Initialize();
  /// the scheduler must outlive the session. Batchable kernels then route
  /// through it instead of the pool — results stay bit-identical.
  void SetExternalScheduler(KernelScheduler* scheduler);

  /// Lends a telemetry registry (the serving layer's per-manager
  /// obs::Registry) to this session. Must be called before Initialize();
  /// the registry must outlive the session. Stage timings and kernel call
  /// counts then flow out through it — nothing flows back in, so an
  /// instrumented run stays bit-identical to an uninstrumented one.
  void SetExternalRegistry(obs::Registry* registry);

  /// The session's durable state (see SessionSnapshotState), capturable
  /// while idle or while a question is pending. Requires Initialize().
  Result<SessionSnapshotState> CaptureState() const;

  /// Rehydrates a freshly constructed session from a CaptureState() image.
  /// The session must have been constructed against the same oracle dataset
  /// and the snapshot's query/options (SessionManager does this resolution);
  /// call pattern: construct -> [SetExternalPool] -> RestoreState. When the
  /// snapshot was pending, the plan phase replays here and the session
  /// resumes with the identical question outstanding — bit-identical to the
  /// uninterrupted run (the differential suite asserts this).
  Status RestoreState(const SessionSnapshotState& state);

 private:
  const DirtyDataset* oracle_;
  EngineContext ctx_;
  std::vector<std::unique_ptr<PipelineStage>> stages_;
  std::unique_ptr<ThreadPool> pool_;   ///< lives behind ctx_.pool
  ThreadPool* external_pool_ = nullptr;
  KernelScheduler* external_scheduler_ = nullptr;
  obs::Registry* external_registry_ = nullptr;

  size_t iteration_ = 0;
  bool initialized_ = false;
  bool pending_ = false;

  /// Plan-entry checkpoint: the only durable state the plan phase consumes
  /// or mutates (TrainStage bumps the retrain counter and may refit — or
  /// keep — the EM forest, SelectStage draws selector RNG). A pending
  /// snapshot persists these so restore can replay the plan.
  uint64_t plan_retrain_counter_ = 0;
  std::string plan_selector_state_;
  std::vector<DecisionTree> plan_forest_trees_;

  /// Cumulative cache-stats snapshot taken at PlanIteration entry; diffing
  /// against the caches at ResolveIteration end yields this iteration's
  /// IncrementalityCounters without the caches needing per-iteration state.
  IncrementalityCounters counter_base_;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_SESSION_H_
