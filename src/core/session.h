// VisCleanSession: the full interactive-cleaning loop of Fig. 6.
//
//   (1) visualization specification  -> constructor (query + dirty table)
//   (2) initialization               -> DetectQuestions (EM, kNN, Algorithm 1)
//   (3) ERG construction             -> BuildErg
//   (4) CQG selection                -> benefit model + selector
//   (5) user interaction             -> SimulatedUser answers the CQG
//   (6) repair + retrain             -> ApplyAnswers, EM retrain
//   (7) refresh visualization        -> CurrentVis / trace EMD
//
// The same class also runs the paper's Single-question baseline (Section
// VII, algorithm (vi)) so both strategies share every other component.
#ifndef VISCLEAN_CORE_SESSION_H_
#define VISCLEAN_CORE_SESSION_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <string>
#include <vector>

#include "clean/question.h"
#include "common/status.h"
#include "data/table.h"
#include "datagen/generator.h"
#include "dist/vis_data.h"
#include "em/em_model.h"
#include "graph/erg.h"
#include "graph/selector.h"
#include "user/cost_model.h"
#include "user/simulated_user.h"
#include "vql/ast.h"

namespace visclean {

/// \brief Questioning strategy: composite (CQG) or isolated singles.
enum class QuestionStrategy { kComposite, kSingle };

/// \brief Session configuration.
struct SessionOptions {
  size_t k = 10;                 ///< CQG size (paper default)
  size_t budget = 15;            ///< iterations (paper default)
  std::string selector = "gss";  ///< see MakeSelector
  QuestionStrategy strategy = QuestionStrategy::kComposite;
  /// #single questions per iteration in kSingle mode (the paper's m,
  /// matched to the #edges of a typical CQG).
  size_t single_m = 10;

  uint64_t seed = 7;
  double auto_merge_threshold = 0.95;  ///< EM prob for machine auto-merge
  double sim_join_lambda = 0.5;        ///< λ of Algorithm 1
  size_t max_t_questions = 200;        ///< |Q_T| cap per iteration
  size_t max_m_questions = 150;        ///< |Q_M| cap per iteration
  size_t blocking_max_block = 16;      ///< token-blocking block-size cap
  size_t max_seed_examples = 4000;     ///< weak-supervision training cap
  ForestOptions forest;                ///< EM model hyperparameters
};

/// \brief Per-component machine seconds of one iteration (Fig. 18).
struct ComponentTimes {
  double detect = 0;   ///< detect errors / generate repairs (incl. kNN)
  double train = 0;    ///< train (fine-tune) the EM model
  double benefit = 0;  ///< estimate benefit over the ERG
  double select = 0;   ///< CQG selection
  double apply = 0;    ///< repair errors + refresh visualization

  double Total() const { return detect + train + benefit + select + apply; }
};

/// \brief Everything recorded about one iteration.
struct IterationTrace {
  size_t iteration = 0;        ///< 1-based
  double emd = 0.0;            ///< EMD(Q(D), Q(D_g)) after this iteration
  double user_seconds = 0.0;   ///< simulated human cost of this iteration
  size_t questions_asked = 0;  ///< edge + vertex questions (or singles)
  double cqg_benefit = 0.0;    ///< estimated benefit of the asked CQG
  ComponentTimes machine;      ///< machine time breakdown
};

/// \brief One end-to-end interactive cleaning run.
class VisCleanSession {
 public:
  /// `oracle` provides both the simulated user's ground truth and the
  /// reference visualization Q(D_g); it must outlive the session. The
  /// session works on its own copy of oracle->dirty.
  VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                  SessionOptions options = {}, UserOptions user_options = {},
                  UserCostModel cost_model = {});

  /// Step (2): detects errors, trains the EM model, builds the first ERG.
  /// Must be called once before RunIteration/Run.
  Status Initialize();

  /// One interaction round. Returns the iteration's trace.
  Result<IterationTrace> RunIteration();

  /// Runs until the budget is exhausted; returns all traces (including an
  /// iteration-0 entry holding the initial EMD).
  Result<std::vector<IterationTrace>> Run();

  /// Current (progressively cleaned) visualization.
  Result<VisData> CurrentVis() const;
  /// The ground-truth visualization Q(D_g).
  Result<VisData> GroundTruthVis() const;
  /// EMD between the two above.
  double CurrentEmd() const;

  const Table& table() const { return table_; }
  const Erg& erg() const { return erg_; }
  const QuestionSet& questions() const { return questions_; }

 private:
  void DetectQuestions(ComponentTimes* times);
  void BuildErg();
  Result<IterationTrace> RunCompositeIteration();
  Result<IterationTrace> RunSingleIteration();
  /// Confirm-edge repair: merge two rows + standardize their X spellings.
  void ApplyConfirmedMatch(size_t row_a, size_t row_b);
  /// Archives the X spelling variants of a cluster about to be machine-
  /// merged as future A-questions.
  void RecordWitnessedSpellings(const std::vector<size_t>& rows);
  /// Records a user-asserted transformation `variant` -> `target` on
  /// `local_rows`: repairs those rows immediately and applies the
  /// transformation table-wide once a second independent answer agrees.
  void VoteTransformation(size_t column, const std::string& variant,
                          const std::string& target,
                          const std::vector<size_t>& local_rows);
  /// Golden-record standardization: rewrites every live cell that carries
  /// any of the X spellings of the co-referring `rows` to one target
  /// spelling — the user's preferred form when `ask_user` (user-confirmed
  /// merges), else the frequency-elected form (machine merges).
  void StandardizeXAcrossRows(const std::vector<size_t>& rows,
                              bool ask_user = true);
  size_t XColumnOrNpos() const;

  const DirtyDataset* oracle_;
  VqlQuery query_;
  SessionOptions options_;
  UserCostModel cost_model_;

  Table table_;
  SimulatedUser user_;
  EmModel em_;
  std::unique_ptr<CqgSelector> selector_;

  std::vector<std::pair<size_t, size_t>> candidates_;
  std::vector<ScoredPair> scored_;
  QuestionSet questions_;
  Erg erg_;

  size_t iteration_ = 0;
  bool initialized_ = false;
  uint64_t retrain_counter_ = 0;

  /// Already-answered questions must not be asked again: spelling pairs the
  /// user ruled on (A-questions; resolved pairs vanish on their own, this
  /// remembers rejections) and (row, column) outlier verdicts.
  std::set<std::pair<std::string, std::string>> a_answered_;
  std::set<std::pair<size_t, size_t>> o_answered_;

  /// Spelling pairs witnessed inside machine-merged clusters (Strategy 1
  /// evidence that physical merging would otherwise destroy): proposed as
  /// A-questions in later iterations until the user rules on them.
  std::vector<AQuestion> merge_witnessed_a_;

  /// Corroboration ledger for table-wide standardization: variant spelling
  /// -> (target spelling, #user answers that asserted it). One answer only
  /// repairs the rows at hand; two agreeing answers rewrite the column —
  /// so a single wrong label (Exp-3) cannot poison a whole venue.
  std::map<std::string, std::pair<std::string, int>> transform_votes_;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_SESSION_H_
