#include "core/benefit_model.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "clean/repair.h"
#include "common/thread_pool.h"
#include "dist/emd.h"
#include "vql/executor.h"

namespace visclean {

namespace {

// Renders the query; an execution error (should not happen for a query that
// rendered before) yields an empty visualization, i.e. zero benefit.
VisData Render(const VqlQuery& query, const Table& table) {
  Result<VisData> vis = ExecuteVql(query, table);
  if (!vis.ok()) return {};
  return std::move(vis).value();
}

// Everything one evaluation thread needs to render a candidate
// incrementally: the shared immutable baseline plus its own scratch.
// `prov` is null when only counters are wanted (full-render modes).
struct IncrementalCtx {
  const VisProvenance* prov = nullptr;  // shared, read-only
  DeltaScratch* scratch = nullptr;      // per-worker
  std::vector<size_t> touched;          // reused per candidate
  BenefitStats* stats = nullptr;
};

// Renders the speculatively repaired table, rolls the repair back, and
// returns how far the visualization moved. With an incremental context the
// render touches only the groups whose rows the repair changed; a repair
// that rewrote a large fraction of the table (mass standardizations) falls
// back to the plain full render, which is cheaper than delta assembly at
// that size — the per-candidate incremental-vs-full choice.
double DistAfter(const VqlQuery& query, Table* table, const VisData& current,
                 UndoLog* undo, size_t* renders, IncrementalCtx* inc) {
  VisData speculative;
  bool delta = false;
  if (inc != nullptr && inc->prov != nullptr) {
    inc->touched.clear();
    undo->CollectTouchedRows(&inc->touched);
    delta = inc->touched.size() < table->num_rows() / 2;
  }
  if (delta) {
    speculative =
        ExecuteVqlDelta(query, *table, *inc->prov, inc->touched, inc->scratch);
    if (inc->stats != nullptr) ++inc->stats->delta_evals;
  } else {
    speculative = Render(query, *table);
    if (inc != nullptr && inc->stats != nullptr) ++inc->stats->full_evals;
  }
  ++*renders;
  undo->Rollback(table);
  return EmdDistance(current, speculative);
}

// B_M + B_O of one vertex: render after the suggested imputation/repair.
// `table` is any exact copy of the session table; restored before return.
double VertexBenefit(const VqlQuery& query, Table* table,
                     const ErgVertex& vertex, const VisData& current,
                     size_t* renders, IncrementalCtx* inc) {
  if (table->is_dead(vertex.row)) return 0.0;
  double benefit = 0.0;
  if (vertex.missing.has_value()) {
    UndoLog undo;
    ApplyCellRepair(table, vertex.missing->row, vertex.missing->column,
                    vertex.missing->suggested, &undo);
    benefit += DistAfter(query, table, current, &undo, renders, inc);  // B_M
  }
  if (vertex.outlier.has_value()) {
    UndoLog undo;
    ApplyCellRepair(table, vertex.outlier->row, vertex.outlier->column,
                    vertex.outlier->suggested, &undo);
    benefit += DistAfter(query, table, current, &undo, renders, inc);  // B_O
  }
  return benefit;
}

// B_T + B_A of one edge (the endpoint vertex benefits are composed by the
// caller). `table` is restored before return.
double EdgeLocalBenefit(const VqlQuery& query, Table* table, const Erg& erg,
                        const ErgEdge& edge, const BenefitOptions& options,
                        const VisData& current, size_t* renders,
                        IncrementalCtx* inc) {
  size_t row_a = erg.vertex(edge.u).row;
  size_t row_b = erg.vertex(edge.v).row;
  if (table->is_dead(row_a) || table->is_dead(row_b)) return 0.0;
  double benefit = 0.0;

  // B_T: confirm branch = merge + standardize the pair's X spellings.
  {
    UndoLog undo;
    if (options.x_column != BenefitOptions::kNoColumn) {
      const Value& xa = table->at(row_a, options.x_column);
      const Value& xb = table->at(row_b, options.x_column);
      if (!xa.is_null() && !xb.is_null()) {
        std::string sa = xa.ToDisplayString();
        std::string sb = xb.ToDisplayString();
        if (sa != sb) {
          ApplyTransformation(table, options.x_column, sa, sb, &undo);
        }
      }
    }
    MergeRows(table, {row_a, row_b}, &undo);
    benefit +=
        edge.p_tuple * DistAfter(query, table, current, &undo, renders, inc);
  }
  // B_A: approve branch = standardize the edge's A-question alone.
  if (edge.has_attr && options.x_column != BenefitOptions::kNoColumn) {
    UndoLog undo;
    ApplyTransformation(table, options.x_column, edge.attr_question.value_a,
                        edge.attr_question.value_b, &undo);
    benefit +=
        edge.p_attr * DistAfter(query, table, current, &undo, renders, inc);
  }
  return benefit;
}

}  // namespace

void BenefitEngine::RebuildFull(const VqlQuery& query, Table* table) {
  Result<VisData> vis = ExecuteVqlIndexed(query, *table, &prov_);
  if (vis.ok()) {
    baseline_ = std::move(vis).value();
  } else {
    baseline_ = VisData{};
    prov_.Clear();
  }
  ++full_rebuilds_;
}

void BenefitEngine::Prepare(const VqlQuery& query, Table* table) {
  std::string fingerprint = query.ToString();
  if (!primed_ || fingerprint != query_fingerprint_) {
    query_fingerprint_ = std::move(fingerprint);
    RebuildFull(query, table);
    primed_ = true;
  } else {
    std::vector<size_t> touched = table->MutatedRowsSince(watermark_);
    if (!touched.empty()) {
      if (prov_.supported) {
        baseline_ = CommitVqlDelta(query, *table, touched, &prov_, &scratch_);
        ++delta_commits_;
      } else {
        RebuildFull(query, table);
      }
    }
  }
  // Journal compaction is the session driver's job: other consumers (the
  // DetectionCache) hold their own watermarks, so compacting here would pull
  // the journal out from under them.
  watermark_ = table->mutation_count();
}

void BenefitEngine::ResyncRolledBack(Table* table) {
  if (!primed_) return;
  watermark_ = table->mutation_count();
}

void BenefitEngine::Invalidate() {
  primed_ = false;
  query_fingerprint_.clear();
  baseline_ = VisData{};
  prov_.Clear();
}

size_t EstimateBenefits(const VqlQuery& query, Table* table, Erg* erg,
                        const BenefitOptions& options) {
  size_t renders = 0;

  // Incremental path: the engine's Prepare()d baseline stands in for the
  // from-scratch render (same bits — both come from ExecuteImpl / the
  // delta-commit that is proven equivalent to it), and when the provenance
  // index is valid each candidate re-aggregates only its dirty groups.
  const bool have_engine =
      options.engine != nullptr && options.mode == BenefitMode::kAuto;
  const bool incremental = have_engine && options.engine->incremental_ready();

  VisData current_storage;
  const VisData* current;
  if (have_engine) {
    current = &options.engine->baseline();
  } else {
    current_storage = Render(query, *table);
    current = &current_storage;
  }
  ++renders;  // the baseline counts as one evaluation in every mode

  const size_t num_vertices = erg->num_vertices();
  const size_t num_edges = erg->num_edges();
  std::vector<double> vertex_benefit(num_vertices, 0.0);
  std::vector<double> edge_local(num_edges, 0.0);

  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.threads);
    pool = owned_pool.get();
  }

  if (pool == nullptr || pool->num_threads() <= 1) {
    // Serial path: speculative repair + rollback in place on `table`.
    DeltaScratch scratch;
    IncrementalCtx inc_storage;
    IncrementalCtx* inc = &inc_storage;
    if (incremental) {
      inc_storage.prov = &options.engine->provenance();
      inc_storage.scratch = &scratch;
    }
    inc_storage.stats = options.stats;
    for (size_t i = 0; i < num_vertices; ++i) {
      vertex_benefit[i] =
          VertexBenefit(query, table, erg->vertex(i), *current, &renders, inc);
    }
    for (size_t e = 0; e < num_edges; ++e) {
      edge_local[e] = EdgeLocalBenefit(query, table, *erg, erg->edge(e),
                                       options, *current, &renders, inc);
    }
  } else {
    // Parallel path: every speculative repair is independent (each rolls
    // back before the next starts), so workers evaluate disjoint index
    // ranges against per-thread table shadows. One clone per worker per
    // call — not per edge — then the UndoLog gives copy-on-write of only
    // the touched rows within the shadow. Workers share the engine's
    // immutable baseline/provenance and own their delta scratch.
    const size_t n = pool->num_threads();
    std::vector<Table> shadows;
    shadows.reserve(n);
    for (size_t w = 0; w < n; ++w) shadows.push_back(table->Clone());
    std::vector<size_t> worker_renders(n, 0);
    std::vector<DeltaScratch> scratches(n);
    std::vector<IncrementalCtx> incs(n);
    std::vector<BenefitStats> worker_stats(n);
    for (size_t w = 0; w < n; ++w) {
      if (incremental) {
        incs[w].prov = &options.engine->provenance();
        incs[w].scratch = &scratches[w];
      }
      incs[w].stats = options.stats != nullptr ? &worker_stats[w] : nullptr;
    }
    auto inc_of = [&](size_t w) -> IncrementalCtx* { return &incs[w]; };

    pool->ParallelChunks(
        num_vertices, [&](size_t w, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            vertex_benefit[i] =
                VertexBenefit(query, &shadows[w], erg->vertex(i), *current,
                              &worker_renders[w], inc_of(w));
          }
        });
    pool->ParallelChunks(num_edges, [&](size_t w, size_t begin, size_t end) {
      for (size_t e = begin; e < end; ++e) {
        edge_local[e] =
            EdgeLocalBenefit(query, &shadows[w], *erg, erg->edge(e), options,
                             *current, &worker_renders[w], inc_of(w));
      }
    });
    for (size_t w = 0; w < n; ++w) {
      renders += worker_renders[w];
      if (options.stats != nullptr) {
        options.stats->delta_evals += worker_stats[w].delta_evals;
        options.stats->full_evals += worker_stats[w].full_evals;
      }
    }
  }

  // Deterministic reduction in edge order; the parenthesization matches the
  // historical serial composition benefit = (B_T + B_A) + (B_u + B_v), so
  // every thread count produces float-identical edge benefits.
  for (size_t e = 0; e < num_edges; ++e) {
    ErgEdge& edge = erg->edge(e);
    edge.benefit =
        edge_local[e] + (vertex_benefit[edge.u] + vertex_benefit[edge.v]);
  }
  if (options.stats != nullptr) options.stats->renders += renders;
  return renders;
}

}  // namespace visclean
