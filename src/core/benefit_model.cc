#include "core/benefit_model.h"

#include <string>
#include <vector>

#include "clean/repair.h"
#include "dist/emd.h"
#include "vql/executor.h"

namespace visclean {

namespace {

// Renders the query; an execution error (should not happen for a query that
// rendered before) yields an empty visualization, i.e. zero benefit.
VisData Render(const VqlQuery& query, const Table& table) {
  Result<VisData> vis = ExecuteVql(query, table);
  if (!vis.ok()) return {};
  return std::move(vis).value();
}

}  // namespace

size_t EstimateBenefits(const VqlQuery& query, Table* table, Erg* erg,
                        const BenefitOptions& options) {
  size_t renders = 0;
  VisData current = Render(query, *table);
  ++renders;

  auto dist_after = [&](UndoLog* undo) {
    VisData speculative = Render(query, *table);
    ++renders;
    undo->Rollback(table);
    return EmdDistance(current, speculative);
  };

  // Vertex-question benefits, once per vertex.
  std::vector<double> vertex_benefit(erg->num_vertices(), 0.0);
  for (size_t i = 0; i < erg->num_vertices(); ++i) {
    const ErgVertex& vertex = erg->vertex(i);
    if (table->is_dead(vertex.row)) continue;
    if (vertex.missing.has_value()) {
      UndoLog undo;
      ApplyCellRepair(table, vertex.missing->row, vertex.missing->column,
                      vertex.missing->suggested, &undo);
      vertex_benefit[i] += dist_after(&undo);  // B_M = dist^Y
    }
    if (vertex.outlier.has_value()) {
      UndoLog undo;
      ApplyCellRepair(table, vertex.outlier->row, vertex.outlier->column,
                      vertex.outlier->suggested, &undo);
      vertex_benefit[i] += dist_after(&undo);  // B_O = dist^Y
    }
  }

  for (size_t e = 0; e < erg->num_edges(); ++e) {
    ErgEdge& edge = erg->edge(e);
    size_t row_a = erg->vertex(edge.u).row;
    size_t row_b = erg->vertex(edge.v).row;
    double benefit = 0.0;

    if (!table->is_dead(row_a) && !table->is_dead(row_b)) {
      // B_T: confirm branch = merge + standardize the pair's X spellings.
      {
        UndoLog undo;
        if (options.x_column != BenefitOptions::kNoColumn) {
          const Value& xa = table->at(row_a, options.x_column);
          const Value& xb = table->at(row_b, options.x_column);
          if (!xa.is_null() && !xb.is_null()) {
            std::string sa = xa.ToDisplayString();
            std::string sb = xb.ToDisplayString();
            if (sa != sb) ApplyTransformation(table, options.x_column, sa, sb, &undo);
          }
        }
        MergeRows(table, {row_a, row_b}, &undo);
        benefit += edge.p_tuple * dist_after(&undo);
      }
      // B_A: approve branch = standardize the edge's A-question alone.
      if (edge.has_attr && options.x_column != BenefitOptions::kNoColumn) {
        UndoLog undo;
        ApplyTransformation(table, options.x_column, edge.attr_question.value_a,
                            edge.attr_question.value_b, &undo);
        benefit += edge.p_attr * dist_after(&undo);
      }
    }

    benefit += vertex_benefit[edge.u] + vertex_benefit[edge.v];
    edge.benefit = benefit;
  }
  return renders;
}

}  // namespace visclean
