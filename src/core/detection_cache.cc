#include "core/detection_cache.h"

#include <sstream>

namespace visclean {

std::string DetectionCache::Fingerprint(const DetectionRequest& request) {
  std::ostringstream out;
  for (const std::string& col : request.blocking.key_columns) {
    out << col << '\x1f';
  }
  out << '|' << request.blocking.max_block_size << '|'
      << request.blocking.max_pairs << '|' << request.numeric_y << '|'
      << request.y_column << '|' << request.missing.k << '|'
      << request.missing.max_questions << '|' << request.outlier.k << '|'
      << request.outlier.max_questions << '|' << request.outlier.score_ratio
      << '|' << request.outlier.impute_k;
  // dirty_fallback_threshold is policy, not structure: changing it never
  // invalidates cached state.
  return out.str();
}

void DetectionCache::BeginIteration(const Table& table,
                                    const DetectionRequest& request,
                                    const KernelEnv& env) {
  const std::string fingerprint = Fingerprint(request);
  blocking_.Configure(request.blocking);
  if (request.numeric_y) {
    missing_.Configure(request.y_column, request.missing, &tokens_);
    outlier_.Configure(request.y_column, request.outlier, &tokens_);
  }

  bool full = !primed_ || fingerprint != fingerprint_;
  std::vector<size_t> dirty;
  if (primed_) {
    // Token sets and feature vectors are pure functions of the row values —
    // independent of the detection config — so even a fingerprint-forced
    // full scan only drops the dirty rows from them.
    dirty = table.MutatedRowsSince(watermark_);
    tokens_.Invalidate(dirty);
    features_.Invalidate(dirty);
    size_t live = table.num_live_rows();
    stats_.last_dirty_rows = dirty.size();
    stats_.last_dirty_fraction =
        live == 0 ? 1.0
                  : static_cast<double>(dirty.size()) / static_cast<double>(live);
    if (!full && stats_.last_dirty_fraction > request.dirty_fallback_threshold) {
      full = true;
      ++stats_.fallback_full_scans;
    }
  } else {
    tokens_.Clear();
    features_.Clear();
    stats_.last_dirty_rows = table.num_live_rows();
    stats_.last_dirty_fraction = 1.0;
  }

  if (full) {
    ++stats_.full_scans;
    blocking_.FullScan(table, env);
    if (request.numeric_y) {
      missing_.FullScan(table, env);
      outlier_.FullScan(table, env);
    }
  } else {
    ++stats_.delta_updates;
    blocking_.Update(table, dirty, env);
    if (request.numeric_y) {
      missing_.Update(table, dirty, env);
      outlier_.Update(table, dirty, env);
    }
  }

  primed_ = true;
  fingerprint_ = fingerprint;
  watermark_ = table.mutation_count();
}

void DetectionCache::ResyncRolledBack(const Table& table) {
  if (!primed_) return;
  watermark_ = table.mutation_count();
}

void DetectionCache::Clear() {
  primed_ = false;
  fingerprint_.clear();
  watermark_ = 0;
  stats_ = DetectionStats();
  tokens_.Clear();
  blocking_ = BlockingDetector();
  missing_ = MissingDetector();
  outlier_ = OutlierDetector();
  features_.Clear();
}

}  // namespace visclean
