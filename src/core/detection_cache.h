// DetectionCache: the journal-driven substrate behind DetectStage (PR 3).
//
// One instance lives on the EngineContext across iterations. Each iteration
// DetectStage hands it the table and a DetectionRequest; the cache decides —
// from its watermark into the table's mutation journal — whether to rebuild
// every detector from scratch or to fold in only the rows that changed since
// the previous iteration. Either way the published results (candidate pairs,
// M-questions, O-questions) are bit-identical to the legacy free functions
// (TokenBlocking / DetectMissing / DetectOutliers) on the current table; the
// differential suite (tests/detect_differential_test.cc) enforces this.
#ifndef VISCLEAN_CORE_DETECTION_CACHE_H_
#define VISCLEAN_CORE_DETECTION_CACHE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "clean/detector.h"
#include "clean/missing_detector.h"
#include "clean/outlier_detector.h"
#include "clean/question.h"
#include "data/table.h"
#include "em/blocking.h"
#include "em/pair_features.h"

namespace visclean {

class ThreadPool;

/// \brief How DetectStage produces its outputs.
enum class DetectionMode {
  /// Route detection through the session's DetectionCache: full scans on the
  /// first iteration / config changes / large dirty fractions, journal-driven
  /// per-row deltas otherwise. Train and generate reuse the cache's feature
  /// memo and sim-join memo. Results are bit-identical to kFull.
  kAuto,
  /// Always call the legacy free functions, serial and uncached — the
  /// reference path the differential suite compares kAuto against.
  kFull,
};

/// \brief Everything DetectStage wants detected this iteration.
struct DetectionRequest {
  BlockingOptions blocking;  ///< candidate-pair generation config
  /// When true, the kNN detectors run on `y_column` (the query's numeric Y).
  bool numeric_y = false;
  size_t y_column = 0;
  MissingDetectorOptions missing;
  OutlierDetectorOptions outlier;
  /// Delta updates are abandoned for a full scan when the dirty fraction
  /// (|dirty rows| / |live rows|) exceeds this; per-row maintenance then
  /// costs more than rebuilding.
  double dirty_fallback_threshold = 0.35;
};

/// \brief Counters for the scaling bench and the differential tests.
struct DetectionStats {
  size_t full_scans = 0;           ///< all full rebuilds (incl. fallbacks)
  size_t fallback_full_scans = 0;  ///< rebuilds forced by the dirty fraction
  size_t delta_updates = 0;        ///< journal-driven incremental scans
  double last_dirty_fraction = 0.0;
  size_t last_dirty_rows = 0;
};

/// \brief Cross-iteration cache that drives detect/train/generate from the
/// table's mutation journal.
///
/// Owned state, all invalidated per dirty row only:
///  * RowTokenCache — per-row token sets shared by both kNN detectors;
///  * BlockingDetector — blocking keys, blocks, pair refcounts;
///  * Missing/OutlierDetector — per-query kNN neighbor lists;
///  * PairFeatureCache — per-pair feature vectors (lent to TrainStage).
///
/// Lifecycle per iteration: BeginIteration() before reading any result;
/// ResyncRolledBack() at the end of BenefitStage (whose speculative repairs
/// all rolled back — the table is bit-for-bit in its BeginIteration state,
/// so the watermark may fast-forward past their journal noise). The session
/// driver compacts the journal only up to the minimum watermark across all
/// journal consumers (BenefitEngine, this cache, and the ErgCache's value
/// index / maintained sim join), so MutatedRowsSince stays legal for each.
class DetectionCache {
 public:
  /// Brings every detector up to date with `table`. Chooses full scan vs
  /// delta update as described above; `env` routes full scans and cache-miss
  /// recomputation through the pool / cross-session scheduler with
  /// deterministic index-ordered merges.
  void BeginIteration(const Table& table, const DetectionRequest& request,
                      const KernelEnv& env);

  /// Pool-only convenience overload (tests, standalone callers).
  void BeginIteration(const Table& table, const DetectionRequest& request,
                      ThreadPool* pool) {
    BeginIteration(table, request, KernelEnv{pool, nullptr, nullptr});
  }

  /// Results of the last BeginIteration — bit-identical to the legacy free
  /// functions on the table state it saw.
  const std::vector<std::pair<size_t, size_t>>& candidates() const {
    return blocking_.pairs();
  }
  const std::vector<MQuestion>& m_questions() const {
    return missing_.questions();
  }
  const std::vector<OQuestion>& o_questions() const {
    return outlier_.questions();
  }

  /// Caches lent to the later stages of the same iteration.
  PairFeatureCache* features() { return &features_; }

  /// Fast-forwards the watermark without touching any cache. Valid ONLY when
  /// the table is bit-for-bit back in its last-BeginIteration state (i.e.
  /// right after EstimateBenefits rolled every speculative repair back).
  void ResyncRolledBack(const Table& table);

  /// Drops everything; the next BeginIteration pays a full rebuild.
  void Clear();

  bool primed() const { return primed_; }
  uint64_t watermark() const { return watermark_; }
  const DetectionStats& stats() const { return stats_; }

 private:
  /// Serialized structural config; a change forces a full scan.
  static std::string Fingerprint(const DetectionRequest& request);

  bool primed_ = false;
  std::string fingerprint_;
  uint64_t watermark_ = 0;  ///< table mutation_count at last BeginIteration
  DetectionStats stats_;

  RowTokenCache tokens_;
  BlockingDetector blocking_;
  MissingDetector missing_;
  OutlierDetector outlier_;
  PairFeatureCache features_;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_DETECTION_CACHE_H_
