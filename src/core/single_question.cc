#include "core/single_question.h"

namespace visclean {

SessionOptions MakeSingleOptions(const SessionOptions& base) {
  SessionOptions options = base;
  options.strategy = QuestionStrategy::kSingle;
  options.single_m = base.k;  // m matched to the CQG size, per Section VII
  return options;
}

Result<RunUntilResult> RunUntilEmd(VisCleanSession* session, double emd_target,
                                   size_t max_iterations) {
  VC_RETURN_IF_ERROR(session->Initialize());
  RunUntilResult result;
  result.final_emd = session->CurrentEmd();
  if (result.final_emd <= emd_target) {
    result.reached_target = true;
    return result;
  }
  for (size_t i = 0; i < max_iterations; ++i) {
    Result<IterationTrace> trace = session->RunIteration();
    if (!trace.ok()) return trace.status();
    result.final_emd = trace.value().emd;
    result.traces.push_back(std::move(trace).value());
    ++result.iterations_used;
    if (result.final_emd <= emd_target) {
      result.reached_target = true;
      break;
    }
  }
  return result;
}

}  // namespace visclean
