#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "clean/a_question_gen.h"
#include "clean/missing_detector.h"
#include "clean/outlier_detector.h"
#include "clean/repair.h"
#include "common/rng.h"
#include "core/benefit_model.h"
#include "em/active_learning.h"
#include "em/blocking.h"
#include "em/clustering.h"

namespace visclean {

namespace {

// Machine auto-merge waits for this many user labels (see ApplyStage).
constexpr size_t kMinLabelsForAutoMerge = 5;

// Records a user-asserted transformation `variant` -> `target` on
// `local_rows`: repairs those rows immediately and applies the
// transformation table-wide once a second independent answer agrees.
void VoteTransformation(EngineContext& ctx, size_t column,
                        const std::string& variant, const std::string& target,
                        const std::vector<size_t>& local_rows) {
  if (variant == target || target.empty()) return;
  // Local repair: the rows the user actually looked at.
  for (size_t r : local_rows) {
    if (ctx.table.is_dead(r)) continue;
    const Value& v = ctx.table.at(r, column);
    if (!v.is_null() && v.ToDisplayString() == variant) {
      ctx.table.Set(r, column, Value::String(target));
    }
  }
  auto& vote = ctx.transform_votes[variant];
  if (vote.first == target) {
    ++vote.second;
  } else {
    vote = {target, 1};
  }
  if (vote.second >= 2) {
    ApplyTransformation(&ctx.table, column, variant, target);
  }
}

// The structural inputs of this iteration's ERG assembly (core/erg_cache.h).
// The promotion cap reuses the T-question cap, matching the legacy builder.
ErgRequest ErgRequestFor(const EngineContext& ctx) {
  ErgRequest request;
  request.x_column = XColumnOrNoColumn(ctx);
  request.max_promoted_a = ctx.options.max_t_questions;
  request.dirty_fallback_threshold = ctx.options.erg_dirty_threshold;
  return request;
}

// Archives the X spelling variants of a cluster about to be machine-merged
// as future A-questions.
void RecordWitnessedSpellings(EngineContext& ctx,
                              const std::vector<size_t>& rows) {
  size_t x_col = XColumnOrNoColumn(ctx);
  if (x_col == BenefitOptions::kNoColumn) return;
  std::set<std::string> spellings;
  std::map<std::string, size_t> freq;
  for (size_t r : rows) {
    if (ctx.table.is_dead(r)) continue;
    const Value& v = ctx.table.at(r, x_col);
    if (v.is_null()) continue;
    std::string sp = v.ToDisplayString();
    spellings.insert(sp);
    ++freq[sp];
  }
  if (spellings.size() < 2) return;
  std::string target;
  size_t best = 0;
  for (const auto& [sp, n] : freq) {
    if (n > best) {
      best = n;
      target = sp;
    }
  }
  for (const std::string& sp : spellings) {
    if (sp == target) continue;
    if (ctx.a_answered.count(std::minmax(sp, target))) continue;
    AQuestion q;
    q.column = x_col;
    q.value_a = sp;
    q.value_b = target;
    q.similarity = 0.9;  // cluster co-membership is strong evidence
    ctx.merge_witnessed_a.push_back(std::move(q));
  }
}

// Golden-record standardization: rewrites every live cell that carries any
// of the X spellings of the co-referring `rows` to one target spelling —
// the user's preferred form when `ask_user` (user-confirmed merges), else
// the frequency-elected form (machine merges).
void StandardizeXAcrossRows(EngineContext& ctx, const std::vector<size_t>& rows,
                            bool ask_user = true) {
  size_t x_col = XColumnOrNoColumn(ctx);
  if (x_col == BenefitOptions::kNoColumn) return;
  // Distinct spellings carried by the co-referring rows.
  std::set<std::string> spellings;
  for (size_t r : rows) {
    if (ctx.table.is_dead(r)) continue;
    const Value& v = ctx.table.at(r, x_col);
    if (!v.is_null()) spellings.insert(v.ToDisplayString());
  }
  if (spellings.size() < 2) return;
  // The user merging these tuples also answers "which value should be
  // used?" — standardize on their preferred spelling. Machine-initiated
  // merges (ask_user = false) must not consume user knowledge and fall
  // back to the globally most frequent spelling (golden-record election).
  std::string target;
  if (ask_user) {
    // The user resolves every witnessed spelling to their preferred form;
    // the first resolution that differs from its input reveals it.
    for (const std::string& sp : spellings) {
      std::string preferred = ctx.user.PreferredSpelling(x_col, sp);
      if (!preferred.empty()) {
        target = preferred;
        break;
      }
    }
  }
  if (target.empty()) {
    size_t best = 0;
    if (ctx.options.erg_mode == ErgMode::kAuto) {
      // Frequency election served by the journal-synced X value index
      // instead of a full-table scan. Mid-ask syncs are safe: the fold is
      // idempotent for a fixed table state. Spellings absent from live data
      // count zero and can never win, so iterating the (sorted) witnessed
      // set matches the legacy sorted-frequency-map walk exactly.
      const XValueIndex& index =
          ctx.erg_cache.SyncValueIndex(ctx.table, ErgRequestFor(ctx), ctx.pool);
      for (const std::string& sp : spellings) {
        size_t n = index.Count(sp);
        if (n > best) {
          best = n;
          target = sp;
        }
      }
    } else {
      std::map<std::string, size_t> freq;
      for (size_t r : ctx.table.LiveRowIds()) {
        const Value& v = ctx.table.at(r, x_col);
        if (v.is_null()) continue;
        std::string s = v.ToDisplayString();
        if (spellings.count(s)) ++freq[s];
      }
      for (const auto& [s, n] : freq) {
        if (n > best) {
          best = n;
          target = s;
        }
      }
    }
  }
  if (target.empty()) return;
  for (const std::string& sp : spellings) {
    if (sp == target) continue;
    if (ask_user) {
      VoteTransformation(ctx, x_col, sp, target, rows);
    } else {
      // Machine-initiated merges only consolidate the rows at hand.
      for (size_t r : rows) {
        if (ctx.table.is_dead(r)) continue;
        const Value& v = ctx.table.at(r, x_col);
        if (!v.is_null() && v.ToDisplayString() == sp) {
          ctx.table.Set(r, x_col, Value::String(target));
        }
      }
    }
  }
}

// Confirm-edge repair: merge two rows + standardize their X spellings.
void ApplyConfirmedMatch(EngineContext& ctx, size_t row_a, size_t row_b) {
  StandardizeXAcrossRows(ctx, {row_a, row_b});
  MergeRows(&ctx.table, {row_a, row_b});
}

}  // namespace

size_t XColumnOrNoColumn(const EngineContext& ctx) {
  Result<size_t> col = ctx.table.schema().IndexOf(ctx.query.x_column);
  if (col.ok() &&
      ctx.table.schema().column(col.value()).type == ColumnType::kCategorical) {
    return col.value();
  }
  for (const Predicate& p : ctx.query.predicates) {
    Result<size_t> pc = ctx.table.schema().IndexOf(p.column);
    if (pc.ok() &&
        ctx.table.schema().column(pc.value()).type ==
            ColumnType::kCategorical) {
      return pc.value();
    }
  }
  return BenefitOptions::kNoColumn;
}

// ------------------------------------------------------------ DetectStage --

Status DetectStage::Run(EngineContext& ctx) {
  ctx.questions = QuestionSet();

  // Blocking + kNN detectors (Fig. 18 "Detect Errors").
  DetectionRequest request;
  for (const ColumnSpec& col : ctx.table.schema().columns()) {
    if (col.type == ColumnType::kText) {
      request.blocking.key_columns.push_back(col.name);
    }
  }
  if (request.blocking.key_columns.empty()) {
    for (const ColumnSpec& col : ctx.table.schema().columns()) {
      if (col.type == ColumnType::kCategorical) {
        request.blocking.key_columns.push_back(col.name);
      }
    }
  }
  request.blocking.max_block_size = ctx.options.blocking_max_block;

  Result<size_t> y_col = ctx.table.schema().IndexOf(ctx.query.y_column);
  request.numeric_y =
      y_col.ok() &&
      ctx.table.schema().column(y_col.value()).type == ColumnType::kNumeric;
  if (request.numeric_y) {
    request.y_column = y_col.value();
    request.missing.max_questions = ctx.options.max_m_questions;
  }
  request.dirty_fallback_threshold = ctx.options.detection_dirty_threshold;

  if (ctx.options.detection_mode == DetectionMode::kAuto) {
    // Journal-driven path: full scans fan out over the session pool (or the
    // cross-session batcher); later iterations fold in only the rows mutated
    // since the last scan.
    ctx.detection.BeginIteration(ctx.table, request, ctx.kernel_env());
    ctx.candidates = ctx.detection.candidates();
    if (request.numeric_y) {
      ctx.questions.m_questions = ctx.detection.m_questions();
      ctx.questions.o_questions = ctx.detection.o_questions();
    }
  } else {
    // Reference path: legacy free functions, serial and uncached.
    ctx.candidates = TokenBlocking(ctx.table, request.blocking);
    if (request.numeric_y) {
      ctx.questions.m_questions =
          DetectMissing(ctx.table, request.y_column, request.missing);
      ctx.questions.o_questions =
          DetectOutliers(ctx.table, request.y_column, request.outlier);
    }
  }
  // Drop outlier verdicts the user already gave (answer memory lives outside
  // the cache, so this filter applies to both modes after the scan).
  std::erase_if(ctx.questions.o_questions, [&](const OQuestion& q) {
    return ctx.o_answered.count({q.row, q.column}) > 0;
  });
  return Status::Ok();
}

// ------------------------------------------------------------- TrainStage --

Status TrainStage::Run(EngineContext& ctx) {
  std::vector<std::pair<size_t, size_t>> training_candidates = ctx.candidates;
  if (training_candidates.size() > ctx.options.max_seed_examples) {
    // Deterministic thinning keeps retraining affordable on large tables.
    Rng rng(ctx.options.seed + ctx.retrain_counter);
    rng.Shuffle(training_candidates);
    training_candidates.resize(ctx.options.max_seed_examples);
  }
  // In kAuto mode the feature vectors come from the detection cache (misses
  // fan over the pool); the fitted forest and the scores are bit-identical
  // to the uncached serial path.
  PairFeatureCache* features = ctx.options.detection_mode == DetectionMode::kAuto
                                   ? ctx.detection.features()
                                   : nullptr;
  const KernelEnv env = ctx.options.detection_mode == DetectionMode::kAuto
                            ? ctx.kernel_env()
                            : KernelEnv{};
  ctx.em.Retrain(ctx.table, training_candidates,
                 ctx.options.seed + ctx.retrain_counter, features, env);
  ++ctx.retrain_counter;
  ctx.scored = ctx.em.ScoreAll(ctx.table, ctx.candidates, features, env);
  return Status::Ok();
}

// ---------------------------------------------------------- GenerateStage --

Status GenerateStage::Run(EngineContext& ctx) {
  ActiveLearningOptions al_options;
  al_options.max_questions = ctx.options.max_t_questions;
  for (const ScoredPair& p : SelectUncertainPairs(ctx.scored, ctx.em,
                                                  al_options)) {
    ctx.questions.t_questions.push_back({p.a, p.b, p.probability});
  }

  size_t x_col = XColumnOrNoColumn(ctx);
  if (x_col != BenefitOptions::kNoColumn) {
    ClusteringOptions cluster_options;
    cluster_options.auto_merge_threshold = ctx.options.auto_merge_threshold;
    EntityClusters clusters =
        ClusterEntities(ctx.table.num_rows(), ctx.scored, ctx.em,
                        cluster_options);
    AQuestionOptions a_options;
    a_options.lambda = ctx.options.sim_join_lambda;
    // kAuto: Strategy 2 reads the journal-maintained incremental self-join
    // (synced here through the ErgCache, which nets the X value index's
    // spelling deltas into insert/retract) instead of re-joining the whole
    // spelling set. kFull: scratch join every iteration (reference path).
    MaintainedAJoin maintained;
    const MaintainedAJoin* maintained_ptr = nullptr;
    if (ctx.options.erg_mode == ErgMode::kAuto) {
      SimJoinOptions join_options;
      join_options.threshold = ctx.options.sim_join_lambda;
      maintained.join = &ctx.erg_cache.SyncSimJoin(ctx.table, ErgRequestFor(ctx),
                                                   join_options, ctx.pool);
      const XValueIndex& index = ctx.erg_cache.value_index();
      maintained.rows_of =
          [&index](const std::string& s) -> const std::set<size_t>* {
        auto it = index.rows_of().find(s);
        return it == index.rows_of().end() ? nullptr : &it->second;
      };
      maintained.cluster_of = &clusters.cluster_of;
      maintained_ptr = &maintained;
    }
    ThreadPool* pool =
        ctx.options.detection_mode == DetectionMode::kAuto ? ctx.pool : nullptr;
    ctx.questions.a_questions = GenerateAQuestions(
        ctx.table, clusters.clusters, x_col, a_options, maintained_ptr, pool);
    // Fold in the spelling pairs witnessed by machine-merged clusters,
    // keeping only those whose variant spelling still occurs in live data.
    // kAuto answers "still live?" from the journal-synced X value index;
    // kFull keeps the legacy full-table scan.
    const XValueIndex* index = nullptr;
    std::set<std::string> live_spellings;
    if (ctx.options.erg_mode == ErgMode::kAuto) {
      index =
          &ctx.erg_cache.SyncValueIndex(ctx.table, ErgRequestFor(ctx), ctx.pool);
    } else {
      for (size_t r : ctx.table.LiveRowIds()) {
        const Value& v = ctx.table.at(r, x_col);
        if (!v.is_null()) live_spellings.insert(v.ToDisplayString());
      }
    }
    auto spelling_live = [&](const std::string& sp) {
      return index != nullptr ? index->Count(sp) > 0
                              : live_spellings.count(sp) > 0;
    };
    std::set<std::pair<std::string, std::string>> present;
    for (const AQuestion& q : ctx.questions.a_questions) {
      present.insert(std::minmax(q.value_a, q.value_b));
    }
    std::erase_if(ctx.merge_witnessed_a, [&](const AQuestion& q) {
      return !spelling_live(q.value_a) || !spelling_live(q.value_b) ||
             ctx.a_answered.count(std::minmax(q.value_a, q.value_b)) > 0;
    });
    for (const AQuestion& q : ctx.merge_witnessed_a) {
      if (present.insert(std::minmax(q.value_a, q.value_b)).second) {
        ctx.questions.a_questions.push_back(q);
      }
    }
    // Drop spelling pairs the user already ruled on.
    std::erase_if(ctx.questions.a_questions, [&](const AQuestion& q) {
      return ctx.a_answered.count(std::minmax(q.value_a, q.value_b)) > 0;
    });
  }
  return Status::Ok();
}

// ---------------------------------------------------------- AssembleStage --

Status AssembleStage::Run(EngineContext& ctx) {
  // Fold this iteration's QuestionSet into the identity pools (both modes:
  // the pools are also what deduplicates questions — a T-question and a
  // duplicate of it collapse to one pool entry, hence one ERG edge).
  ctx.question_store.Ingest(ctx.questions);
  ErgRequest request = ErgRequestFor(ctx);
  if (ctx.options.erg_mode == ErgMode::kAuto) {
    // The detection cache's pair-feature memo is journal-invalidated, so it
    // is only safe (and only exists) when detection also runs incrementally.
    PairFeatureCache* features =
        ctx.options.detection_mode == DetectionMode::kAuto
            ? ctx.detection.features()
            : nullptr;
    ctx.erg_cache.BeginIteration(ctx.table, ctx.question_store, ctx.em,
                                 request, features, ctx.kernel_env(),
                                 &ctx.erg);
  } else {
    ErgCache::AssembleFull(ctx.table, ctx.question_store, ctx.em, request,
                           &ctx.erg);
  }
  return Status::Ok();
}

// ----------------------------------------------------------- BenefitStage --

Status BenefitStage::Run(EngineContext& ctx) {
  BenefitOptions benefit_options;
  benefit_options.x_column = XColumnOrNoColumn(ctx);
  benefit_options.threads = ctx.options.threads;
  benefit_options.pool = ctx.pool;
  benefit_options.mode = ctx.options.benefit_mode;
  if (ctx.options.benefit_mode == BenefitMode::kAuto) {
    // Fold the repairs accepted since last iteration into the cached
    // baseline (dirty rows only, via the table's mutation journal), then
    // estimate against it: candidates re-aggregate only their dirty groups.
    ctx.benefit_engine.Prepare(ctx.query, &ctx.table);
    benefit_options.engine = &ctx.benefit_engine;
  }
  EstimateBenefits(ctx.query, &ctx.table, &ctx.erg, benefit_options);
  if (benefit_options.engine != nullptr) {
    // Every speculative repair rolled back: skip their journal entries so
    // the next Prepare sees only genuinely accepted repairs.
    ctx.benefit_engine.ResyncRolledBack(&ctx.table);
  }
  // Same fast-forward for the detection cache: the table is bit-for-bit in
  // its DetectStage-end state here, so the rolled-back speculative noise
  // must not read as invalidations next iteration.
  ctx.detection.ResyncRolledBack(ctx.table);
  // And for the ERG cache's value index, by the same argument.
  ctx.erg_cache.ResyncRolledBack(ctx.table);
  return Status::Ok();
}

// ------------------------------------------------------------ SelectStage --

Status SelectStage::Run(EngineContext& ctx) {
  // kAuto: refresh the maintained selection support once for this published
  // snapshot and hand it to the selector through the view, so its (and the
  // fallback loop's) calls do O(k) induction instead of per-call rebuilds.
  // kFull: support-less view — the selectors' original inline path.
  ErgView view =
      ctx.options.erg_mode == ErgMode::kAuto
          ? ErgView(ctx.erg,
                    ctx.erg_cache.RefreshSelectSupport(ctx.erg, &ctx.arena))
          : ErgView(ctx.erg);
  ctx.cqg = ctx.selector->Select(view, ctx.options.k);
  if (ctx.cqg.empty()) {
    // No edges remain (duplicates resolved) but isolated vertices may still
    // carry M-/O-questions: present up to k of them as one vertex-only
    // composite so the budgeted loop can finish the cleaning job.
    for (size_t v = 0;
         v < ctx.erg.num_vertices() && ctx.cqg.vertices.size() < ctx.options.k;
         ++v) {
      const ErgVertex& vertex = ctx.erg.vertex(v);
      if (vertex.missing.has_value() || vertex.outlier.has_value()) {
        ctx.cqg.vertices.push_back(v);
      }
    }
  }
  ctx.trace.cqg_benefit = ctx.cqg.total_benefit;
  return Status::Ok();
}

// --------------------------------------------------------------- AskStage --

Status AskStage::Run(EngineContext& ctx) {
  size_t vertex_questions = 0;
  for (size_t e : ctx.cqg.edge_indices) {
    const ErgEdge& edge = ctx.erg.edge(e);
    size_t row_a = ctx.erg.vertex(edge.u).row;
    size_t row_b = ctx.erg.vertex(edge.v).row;
    if (ctx.table.is_dead(row_a) || ctx.table.is_dead(row_b)) continue;
    std::optional<bool> confirm =
        ctx.user.AnswerT({row_a, row_b, edge.p_tuple});
    if (!confirm.has_value()) continue;  // incomplete answer
    if (*confirm) {
      ctx.em.AddLabel(row_a, row_b, true);
      ApplyConfirmedMatch(ctx, row_a, row_b);
    } else {
      ctx.em.AddLabel(row_a, row_b, false);
      // Tuples differ, but the spellings may still be synonyms (distinct
      // papers at the same venue): the GUI's follow-up A-question.
      if (edge.has_attr) {
        std::optional<AttributeAnswer> answer =
            ctx.user.AnswerA(edge.attr_question);
        if (answer.has_value()) {
          ctx.a_answered.insert(std::minmax(edge.attr_question.value_a,
                                            edge.attr_question.value_b));
          if (answer->same) {
            // Standardize both spellings on the user's preferred form:
            // repair the edge's rows now, go table-wide on corroboration.
            for (const std::string* s : {&edge.attr_question.value_a,
                                         &edge.attr_question.value_b}) {
              VoteTransformation(ctx, edge.attr_question.column, *s,
                                 answer->preferred, {row_a, row_b});
            }
          }
        }
      }
    }
  }
  for (size_t v : ctx.cqg.vertices) {
    const ErgVertex& vertex = ctx.erg.vertex(v);
    if (ctx.table.is_dead(vertex.row)) continue;
    if (vertex.missing.has_value() &&
        ctx.table.at(vertex.missing->row, vertex.missing->column).is_null()) {
      std::optional<double> value = ctx.user.AnswerM(*vertex.missing);
      if (value.has_value()) {
        ApplyCellRepair(&ctx.table, vertex.missing->row,
                        vertex.missing->column, *value);
      }
      ++vertex_questions;
    }
    if (vertex.outlier.has_value()) {
      std::optional<OutlierAnswer> answer = ctx.user.AnswerO(*vertex.outlier);
      if (answer.has_value()) {
        ctx.o_answered.insert({vertex.outlier->row, vertex.outlier->column});
        if (answer->is_outlier) {
          ApplyCellRepair(&ctx.table, vertex.outlier->row,
                          vertex.outlier->column, answer->repair);
        }
      }
      ++vertex_questions;
    }
  }

  ctx.trace.questions_asked = ctx.cqg.edge_indices.size() + vertex_questions;
  ctx.trace.user_seconds =
      ctx.cost_model.CqgSeconds(ctx.cqg.edge_indices.size(), vertex_questions);
  return Status::Ok();
}

// --------------------------------------------------------- SingleAskStage --

Status SingleAskStage::Run(EngineContext& ctx) {
  // The paper's Single baseline: m questions per iteration, m/4 from each
  // candidate set (padded from Q_T when a set runs short).
  size_t per_set = std::max<size_t>(1, ctx.options.single_m / 4);
  size_t asked_t = 0, asked_a = 0, asked_m = 0, asked_o = 0;

  for (const TQuestion& q : ctx.questions.t_questions) {
    if (asked_t >= per_set) break;
    if (ctx.table.is_dead(q.row_a) || ctx.table.is_dead(q.row_b)) continue;
    std::optional<bool> confirm = ctx.user.AnswerT(q);
    ++asked_t;
    if (!confirm.has_value()) continue;
    ctx.em.AddLabel(q.row_a, q.row_b, *confirm);
    if (*confirm) ApplyConfirmedMatch(ctx, q.row_a, q.row_b);
  }
  for (const AQuestion& q : ctx.questions.a_questions) {
    if (asked_a >= per_set) break;
    std::optional<AttributeAnswer> answer = ctx.user.AnswerA(q);
    ++asked_a;
    if (answer.has_value()) {
      ctx.a_answered.insert(std::minmax(q.value_a, q.value_b));
      if (answer->same) {
        for (const std::string* s : {&q.value_a, &q.value_b}) {
          VoteTransformation(ctx, q.column, *s, answer->preferred, {});
        }
      }
    }
  }
  for (const MQuestion& q : ctx.questions.m_questions) {
    if (asked_m >= per_set) break;
    if (ctx.table.is_dead(q.row) || !ctx.table.at(q.row, q.column).is_null()) {
      continue;
    }
    std::optional<double> value = ctx.user.AnswerM(q);
    ++asked_m;
    if (value.has_value()) {
      ApplyCellRepair(&ctx.table, q.row, q.column, *value);
    }
  }
  for (const OQuestion& q : ctx.questions.o_questions) {
    if (asked_o >= per_set) break;
    if (ctx.table.is_dead(q.row)) continue;
    std::optional<OutlierAnswer> answer = ctx.user.AnswerO(q);
    ++asked_o;
    if (answer.has_value()) {
      ctx.o_answered.insert({q.row, q.column});
      if (answer->is_outlier) {
        ApplyCellRepair(&ctx.table, q.row, q.column, answer->repair);
      }
    }
  }
  // Pad with extra T-questions up to m.
  for (const TQuestion& q : ctx.questions.t_questions) {
    if (asked_t + asked_a + asked_m + asked_o >= ctx.options.single_m) break;
    if (asked_t >= ctx.questions.t_questions.size()) break;
    if (ctx.table.is_dead(q.row_a) || ctx.table.is_dead(q.row_b)) continue;
    if (ctx.em.LabelOf(q.row_a, q.row_b) >= 0) continue;
    std::optional<bool> confirm = ctx.user.AnswerT(q);
    ++asked_t;
    if (!confirm.has_value()) continue;
    ctx.em.AddLabel(q.row_a, q.row_b, *confirm);
    if (*confirm) ApplyConfirmedMatch(ctx, q.row_a, q.row_b);
  }

  ctx.trace.questions_asked = asked_t + asked_a + asked_m + asked_o;
  ctx.trace.user_seconds =
      ctx.cost_model.SingleGroupSeconds(asked_t, asked_a, asked_m, asked_o);
  return Status::Ok();
}

// ------------------------------------------------------------- ApplyStage --

Status ApplyStage::Run(EngineContext& ctx) {
  // Machine auto-merge: confident clusters collapse without user effort
  // ("many tuple-level duplicates are removed by the EM model"). Gated on a
  // few user labels: the unsupervised bootstrap model must not rewrite the
  // dataset before the user has taught it anything.
  if (ctx.em.num_labels() < kMinLabelsForAutoMerge) return Status::Ok();
  ClusteringOptions cluster_options;
  cluster_options.auto_merge_threshold = ctx.options.auto_merge_threshold;
  EntityClusters clusters = ClusterEntities(ctx.table.num_rows(), ctx.scored,
                                            ctx.em, cluster_options);
  for (const std::vector<size_t>& cluster : clusters.MultiMemberClusters()) {
    std::vector<size_t> live;
    for (size_t r : cluster) {
      if (!ctx.table.is_dead(r)) live.push_back(r);
    }
    // Machine merges consolidate locally only: even a rare wrong cluster
    // would poison the whole column if its spellings were standardized
    // table-wide. The witnessed variant pairs become A-questions, so the
    // user-verified path performs the actual standardization.
    if (live.size() >= 2) {
      RecordWitnessedSpellings(ctx, live);
      MergeRows(&ctx.table, live);
    }
  }
  return Status::Ok();
}

// -------------------------------------------------------------- MakeStages --

std::vector<std::unique_ptr<PipelineStage>> MakeStages(
    QuestionStrategy strategy) {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(std::make_unique<DetectStage>());
  stages.push_back(std::make_unique<TrainStage>());
  stages.push_back(std::make_unique<GenerateStage>());
  if (strategy == QuestionStrategy::kComposite) {
    stages.push_back(std::make_unique<AssembleStage>());
    stages.push_back(std::make_unique<BenefitStage>());
    stages.push_back(std::make_unique<SelectStage>());
    stages.push_back(std::make_unique<AskStage>());
  } else {
    stages.push_back(std::make_unique<SingleAskStage>());
  }
  stages.push_back(std::make_unique<ApplyStage>());
  return stages;
}

}  // namespace visclean
