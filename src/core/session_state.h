// The durable state of one interactive-cleaning session — everything a
// resumed session needs to continue bit-identically, and nothing more.
//
// What is here: the working table (data + journal watermark), the label
// ledger AND fitted forest of the EM model (Retrain keeps the previous fit
// when a round's training set is degenerate, so the forest is genuinely
// durable — it cannot be recomputed from the labels alone), the
// QuestionStore pools, the cross-iteration answer memory, the RNG states of
// the stateful components, and the progress counters.
//
// What is deliberately NOT here:
//  * the three incremental caches (BenefitEngine, DetectionCache, ErgCache)
//    — they are pure accelerations of recomputable state and rebuild on the
//    first touch after a restore, bit-identically (the caches' differential
//    contract from PRs 2-4 is exactly what makes this sound);
//  * per-iteration products (candidates, scores, ERG, CQG) — a pending
//    iteration is resumed by re-running the deterministic plan phase from
//    the checkpointed counters (see VisCleanSession::RestoreState), so the
//    snapshot stays a few kilobytes of durable state rather than a dump of
//    every derived structure;
//  * the oracle / ground truth — a serving deployment resolves the dataset
//    by name (SessionManager::RegisterDataset); snapshots reference it.
#ifndef VISCLEAN_CORE_SESSION_STATE_H_
#define VISCLEAN_CORE_SESSION_STATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clean/question.h"
#include "clean/question_store.h"
#include "core/engine_context.h"
#include "data/table.h"
#include "ml/decision_tree.h"
#include "user/cost_model.h"
#include "user/simulated_user.h"

namespace visclean {

/// \brief A snapshot of one session, capturable while idle (between
/// iterations) or while a composite question is pending an answer.
///
/// When `pending` is true, `retrain_counter`, `selector_state`, and
/// `forest_trees` hold their values from the moment the pending iteration's
/// plan phase STARTED (the plan checkpoint): restoring replays the plan
/// phase, which re-consumes them and arrives at the identical pending
/// question.
struct SessionSnapshotState {
  // ---- Identity / configuration ----
  std::string dataset_name;  ///< DirtyDataset::name; resolved at restore
  std::string query_text;    ///< VqlQuery::ToString(), re-parsed at restore
  SessionOptions options;
  UserOptions user_options;
  UserCostModel cost_model;

  // ---- Progress ----
  size_t completed_iterations = 0;  ///< fully resolved interaction rounds
  bool pending = false;             ///< a planned question awaits its answer

  // ---- Durable engine state ----
  Table table;  ///< working data; mutation_count() is the journal watermark
  uint64_t retrain_counter = 0;
  std::map<std::pair<size_t, size_t>, bool> em_labels;
  /// The EM forest's fitted trees (empty = never fitted). Needed because a
  /// degenerate retrain latches the previous fit rather than refitting.
  std::vector<DecisionTree> forest_trees;
  QuestionStoreSnapshot question_store;
  std::set<std::pair<std::string, std::string>> a_answered;
  std::set<std::pair<size_t, size_t>> o_answered;
  std::vector<AQuestion> merge_witnessed_a;
  std::map<std::string, std::pair<std::string, int>> transform_votes;
  std::string user_rng_state;  ///< SimulatedUser::SaveRngState()
  std::string selector_state;  ///< CqgSelector::SaveState(); "" = stateless
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_SESSION_STATE_H_
