// Production session defaults: the paper's interactive-loop configuration
// (Section VII: k = 10, budget = 15) plus the sweep-picked per-dataset
// journal-fallback thresholds. These used to live in bench/bench_util.h;
// they moved here so production configs — the serving layer in particular —
// get the tuned defaults without pulling in bench headers.
#ifndef VISCLEAN_CORE_PAPER_OPTIONS_H_
#define VISCLEAN_CORE_PAPER_OPTIONS_H_

#include <string>

#include "core/engine_context.h"

namespace visclean {

/// \brief Per-dataset detection dirty-fraction fallback threshold, grounded
/// by the sweep in bench_detect_scaling ("threshold_sweep" in
/// BENCH_detect_scaling.json): interactive-loop dirty fractions stay well
/// below 0.15, so tail detect time is flat for thresholds >= 0.15 and
/// degrades below it (needless fallback full scans). The values sit
/// mid-flat-region — away from the fallback cliff, but low enough that a
/// bulk edit still reverts to the pooled scan. Unknown dataset names get
/// the conservative D3 value.
double DefaultDetectionDirtyThreshold(const std::string& dataset);

/// \brief The ErgCache value index follows the identical journal-fold /
/// pooled full-rebuild contract as the DetectionCache, so its fallback
/// threshold reuses the detection sweep's conclusion.
double DefaultErgDirtyThreshold(const std::string& dataset);

/// \brief Session configuration at paper defaults (k = 10, budget = 15,
/// 12-tree forest). When `dataset` is given ("D1"/"D2"/"D3"), the
/// journal-fallback thresholds use the sweep-picked per-dataset defaults.
SessionOptions PaperSessionOptions(const std::string& selector = "gss",
                                   const std::string& dataset = "");

}  // namespace visclean

#endif  // VISCLEAN_CORE_PAPER_OPTIONS_H_
