#include "core/erg_cache.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/table.h"
#include "em/em_model.h"
#include "text/similarity.h"

namespace visclean {

// ------------------------------------------------------------ XValueIndex --

void XValueIndex::Clear() {
  primed_ = false;
  rows_of_.clear();
  shadow_.clear();
}

void XValueIndex::FullRebuild(const Table& table, size_t x_column,
                              ThreadPool* pool) {
  rows_of_.clear();
  shadow_.assign(table.num_rows(), std::nullopt);
  size_t n = table.num_rows();
  auto scan = [&](std::vector<std::pair<std::string, size_t>>* out,
                  size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      if (table.is_dead(r)) continue;
      const Value& v = table.at(r, x_column);
      if (!v.is_null()) out->emplace_back(v.ToDisplayString(), r);
    }
  };
  if (pool != nullptr && n >= 2 * pool->num_threads()) {
    // Per-worker scratch merged in worker order; the merged result is a
    // (sorted) map of (sorted) row sets, so it is partition-independent.
    std::vector<std::vector<std::pair<std::string, size_t>>> parts(
        pool->num_threads());
    pool->ParallelChunks(n, [&](size_t worker, size_t begin, size_t end) {
      scan(&parts[worker], begin, end);
    });
    for (auto& part : parts) {
      for (auto& [spelling, row] : part) {
        rows_of_[spelling].insert(row);
        shadow_[row] = std::move(spelling);
      }
    }
  } else {
    std::vector<std::pair<std::string, size_t>> all;
    scan(&all, 0, n);
    for (auto& [spelling, row] : all) {
      rows_of_[spelling].insert(row);
      shadow_[row] = std::move(spelling);
    }
  }
  primed_ = true;
}

void XValueIndex::Fold(const Table& table, size_t x_column,
                       const std::vector<size_t>& rows,
                       std::set<std::string>* touched) {
  VC_CHECK(primed_, "XValueIndex::Fold before FullRebuild");
  if (shadow_.size() < table.num_rows()) shadow_.resize(table.num_rows());
  for (size_t r : rows) {
    if (r >= shadow_.size()) shadow_.resize(r + 1);
    std::optional<std::string> now;
    if (r < table.num_rows() && !table.is_dead(r)) {
      const Value& v = table.at(r, x_column);
      if (!v.is_null()) now = v.ToDisplayString();
    }
    if (shadow_[r] == now) continue;
    if (shadow_[r].has_value()) {
      if (touched != nullptr) touched->insert(*shadow_[r]);
      auto it = rows_of_.find(*shadow_[r]);
      if (it != rows_of_.end()) {
        it->second.erase(r);
        if (it->second.empty()) rows_of_.erase(it);
      }
    }
    if (now.has_value()) {
      if (touched != nullptr) touched->insert(*now);
      rows_of_[*now].insert(r);
    }
    shadow_[r] = std::move(now);
  }
}

size_t XValueIndex::Count(const std::string& spelling) const {
  auto it = rows_of_.find(spelling);
  return it == rows_of_.end() ? 0 : it->second.size();
}

size_t XValueIndex::Representative(const std::string& spelling) const {
  auto it = rows_of_.find(spelling);
  if (it == rows_of_.end() || it->second.empty()) return kNoRow;
  return *it->second.begin();  // min live row: "first live row wins"
}

const std::optional<std::string>& XValueIndex::SpellingOf(size_t row) const {
  static const std::optional<std::string> kNone;
  return row < shadow_.size() ? shadow_[row] : kNone;
}

// ------------------------------------------------- shared assembly pieces --

namespace {

// Everything a payload computation needs. `memo`/`stats` are null on the
// stateless kFull path.
struct AssemblyEnv {
  const Table* table = nullptr;
  const QuestionStore* store = nullptr;
  const EmModel* em = nullptr;
  const ErgRequest* request = nullptr;
  const XValueIndex* index = nullptr;
  std::map<std::pair<std::string, std::string>, double>* memo = nullptr;
  ErgStats* stats = nullptr;
  PairFeatureCache* features = nullptr;
  /// Kernel routing for the batched EM inference behind promoted-A edge
  /// probabilities; default (all-null) runs the serial reference path.
  KernelEnv kernel;
};

double JaccardOf(const AssemblyEnv& env, const std::string& a,
                 const std::string& b) {
  std::pair<std::string, std::string> key = std::minmax(a, b);
  if (env.memo == nullptr) return WordJaccard(key.first, key.second);
  auto it = env.memo->find(key);
  if (it != env.memo->end()) {
    if (env.stats != nullptr) ++env.stats->jaccard_memo_hits;
    return it->second;
  }
  double sim = WordJaccard(key.first, key.second);
  env.memo->emplace(std::move(key), sim);
  if (env.stats != nullptr) ++env.stats->jaccard_memo_misses;
  return sim;
}

// Canonical A-promotion (Definition 2.1's attribute-level edges): walk the
// A-pool by (similarity desc, key asc); promote the pair of spelling
// representatives (min live row each) unless the row pair is already
// claimed by a T-question or an earlier promotion. Skips do not consume
// the cap. Identical in both assembly modes by construction.
std::map<AQuestionKey, std::pair<size_t, size_t>> SelectPromotions(
    const AssemblyEnv& env) {
  std::map<AQuestionKey, std::pair<size_t, size_t>> promoted;
  if (env.request->x_column == ErgRequest::kNoColumn) return promoted;

  using Entry = const std::pair<const AQuestionKey, StoredQuestion<AQuestion>>*;
  std::vector<Entry> order;
  order.reserve(env.store->a_pool().size());
  for (const auto& entry : env.store->a_pool()) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](Entry a, Entry b) {
    if (a->second.question.similarity != b->second.question.similarity) {
      return a->second.question.similarity > b->second.question.similarity;
    }
    return a->first < b->first;
  });

  std::set<std::pair<size_t, size_t>> claimed;
  for (const auto& [key, stored] : env.store->t_pool()) claimed.insert(key);

  size_t added = 0;
  for (Entry entry : order) {
    if (added >= env.request->max_promoted_a) break;
    size_t ra = env.index->Representative(entry->first.second.first);
    size_t rb = env.index->Representative(entry->first.second.second);
    if (ra == XValueIndex::kNoRow || rb == XValueIndex::kNoRow || ra == rb) {
      continue;
    }
    std::pair<size_t, size_t> pair = std::minmax(ra, rb);
    if (!claimed.insert(pair).second) continue;
    promoted.emplace(entry->first, pair);
    ++added;
  }
  return promoted;
}

}  // namespace

// --------------------------------------------------------------- ErgCache --

namespace {

// Payload of the edge on row pair (ru < rv), a pure function of the table's
// X spellings (via the index shadow), the pools, and the EM model.
// T-sourced edges take the pooled probability; promoted-A edges recompute
// the EM match probability every iteration (the model retrains per
// iteration, so the prediction can't be cached — but feature extraction
// can: env.features, when set, memoizes the pair's feature vector). The
// callers batch the promoted-A probabilities through one MatchProbabilities
// call (bit-identical to per-pair MatchProbability) and pass the result in
// as `em_probability`; it is ignored for tuple-sourced edges.
void FillEdgePayload(const AssemblyEnv& env, size_t ru, size_t rv,
                     bool tuple_sourced, double em_probability, ErgEdge* edge) {
  if (tuple_sourced) {
    edge->p_tuple = env.store->t_pool().at({ru, rv}).question.probability;
  } else {
    edge->p_tuple = em_probability;
  }
  edge->has_attr = false;
  edge->p_attr = 0.0;
  edge->attr_question = AQuestion();
  size_t x = env.request->x_column;
  if (x == ErgRequest::kNoColumn) return;
  const std::optional<std::string>& sa = env.index->SpellingOf(ru);
  const std::optional<std::string>& sb = env.index->SpellingOf(rv);
  if (!sa.has_value() || !sb.has_value() || *sa == *sb) return;
  edge->has_attr = true;
  AQuestionKey akey{x, std::minmax(*sa, *sb)};
  auto it = env.store->a_pool().find(akey);
  if (it != env.store->a_pool().end()) {
    edge->attr_question = it->second.question;
    edge->p_attr = it->second.question.similarity;
  } else {
    // Synthesized on the fly; canonical orientation: min-row spelling first.
    edge->attr_question.column = x;
    edge->attr_question.value_a = *sa;
    edge->attr_question.value_b = *sb;
    edge->p_attr = JaccardOf(env, *sa, *sb);
    edge->attr_question.similarity = edge->p_attr;
  }
}

size_t EnsureVertexIn(Erg* erg, size_t row) {
  size_t v = erg->VertexOfRow(row);
  if (v != Erg::kNoVertex) return v;
  ErgVertex vertex;
  vertex.row = row;
  return erg->AddVertex(std::move(vertex));
}

// Refreshes M/O payloads of the vertex backing `row` from the pools
// (canonical overwrite order: pool key ascending, so the greatest column
// wins when a row carries several questions of one kind).
void RefreshVertexPayload(const AssemblyEnv& env, Erg* erg, size_t row) {
  size_t v = erg->VertexOfRow(row);
  if (v == Erg::kNoVertex) return;
  ErgVertex& vertex = erg->vertex(v);
  vertex.missing.reset();
  vertex.outlier.reset();
  for (auto it = env.store->m_pool().lower_bound({row, 0});
       it != env.store->m_pool().end() && it->first.first == row; ++it) {
    vertex.missing = it->second.question;
  }
  for (auto it = env.store->o_pool().lower_bound({row, 0});
       it != env.store->o_pool().end() && it->first.first == row; ++it) {
    vertex.outlier = it->second.question;
  }
}

// Builds the slot graph (bare edges, no payloads) for the current pools.
// Shared by the stateless full assembly and the cache's full rebuild.
void BuildSlots(const AssemblyEnv& env, Erg* erg,
                std::map<std::pair<size_t, size_t>, bool>* tuple_sourced,
                std::map<AQuestionKey, std::pair<size_t, size_t>>* promoted) {
  for (const auto& [key, stored] : env.store->t_pool()) {
    EnsureVertexIn(erg, key.first);
    EnsureVertexIn(erg, key.second);
    (*tuple_sourced)[key] = true;
  }
  *promoted = SelectPromotions(env);
  for (const auto& [akey, pair] : *promoted) {
    EnsureVertexIn(erg, pair.first);
    EnsureVertexIn(erg, pair.second);
    (*tuple_sourced)[pair] = false;
  }
  for (const auto& [key, stored] : env.store->m_pool()) {
    EnsureVertexIn(erg, key.first);
  }
  for (const auto& [key, stored] : env.store->o_pool()) {
    EnsureVertexIn(erg, key.first);
  }
  for (const auto& [pair, is_tuple] : *tuple_sourced) {
    ErgEdge edge;
    edge.u = erg->VertexOfRow(pair.first);
    edge.v = erg->VertexOfRow(pair.second);
    erg->AddEdge(std::move(edge));
  }
  for (size_t v = 0; v < erg->num_vertices(); ++v) {
    RefreshVertexPayload(env, erg, erg->vertex(v).row);
  }
}

// Recomputes every live edge payload. O(|E|) with the spelling shadow and
// the jaccard memo; the full-build paths use it for correctness by
// recomputation (DeltaUpdate instead tracks fine-grained invalidation —
// promoted edges, pool churn, journal-dirty incidence — and refreshes
// only those; see step 4 there).
void RefreshAllPayloads(
    const AssemblyEnv& env, Erg* erg,
    const std::function<bool(std::pair<size_t, size_t>)>& is_tuple_sourced) {
  // One pass collects the live edges; the promoted-A subset goes through a
  // single batched MatchProbabilities call (flat-forest kernel, routed via
  // env.kernel) before the fill pass.
  std::vector<size_t> live_edges;
  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<char> tuple;
  std::vector<std::pair<size_t, size_t>> em_pairs;
  for (size_t e = 0; e < erg->num_edges(); ++e) {
    if (!erg->edge_live(e)) continue;
    const ErgEdge& edge = erg->edge(e);
    std::pair<size_t, size_t> pair =
        std::minmax(erg->vertex(edge.u).row, erg->vertex(edge.v).row);
    bool is_tuple = is_tuple_sourced(pair);
    live_edges.push_back(e);
    pairs.push_back(pair);
    tuple.push_back(is_tuple ? 1 : 0);
    if (!is_tuple) em_pairs.push_back(pair);
  }
  std::vector<double> em_probs = env.em->MatchProbabilities(
      *env.table, em_pairs, env.features, env.kernel);
  size_t next_em = 0;
  for (size_t i = 0; i < live_edges.size(); ++i) {
    double p = tuple[i] != 0 ? 0.0 : em_probs[next_em++];
    FillEdgePayload(env, pairs[i].first, pairs[i].second, tuple[i] != 0, p,
                    &erg->edge(live_edges[i]));
    if (env.stats != nullptr) ++env.stats->payload_refreshes;
  }
}

}  // namespace

void ErgCache::AssembleFull(const Table& table, const QuestionStore& store,
                            const EmModel& em, const ErgRequest& request,
                            Erg* out) {
  XValueIndex index;
  if (request.x_column != ErgRequest::kNoColumn) {
    index.FullRebuild(table, request.x_column, /*pool=*/nullptr);
  }
  AssemblyEnv env;
  env.table = &table;
  env.store = &store;
  env.em = &em;
  env.request = &request;
  env.index = &index;

  Erg work;
  std::map<std::pair<size_t, size_t>, bool> tuple_sourced;
  std::map<AQuestionKey, std::pair<size_t, size_t>> promoted;
  BuildSlots(env, &work, &tuple_sourced, &promoted);
  RefreshAllPayloads(env, &work, [&](std::pair<size_t, size_t> pair) {
    return tuple_sourced.at(pair);
  });
  *out = work.Compacted();
}

void ErgCache::EnsureConfig(const ErgRequest& request) {
  std::ostringstream fp;
  fp << "x=" << request.x_column << ";cap=" << request.max_promoted_a;
  if (fp.str() != fingerprint_) {
    Clear();
    fingerprint_ = fp.str();
  }
}

const XValueIndex& ErgCache::SyncValueIndex(const Table& table,
                                            const ErgRequest& request,
                                            ThreadPool* pool) {
  EnsureConfig(request);
  if (request.x_column == ErgRequest::kNoColumn) {
    // No X column: the graph depends only on the pools, never the journal.
    watermark_ = table.mutation_count();
    return index_;
  }
  if (!index_.primed()) {
    index_.FullRebuild(table, request.x_column, pool);
    rebuild_graph_ = true;
    join_rebuild_ = true;
    watermark_ = table.mutation_count();
    return index_;
  }
  std::vector<size_t> dirty = table.MutatedRowsSince(watermark_);
  watermark_ = table.mutation_count();
  if (dirty.empty()) return index_;
  double fraction = static_cast<double>(dirty.size()) /
                    static_cast<double>(std::max<size_t>(1, table.num_rows()));
  stats_.last_dirty_rows = dirty.size();
  stats_.last_dirty_fraction = fraction;
  if (fraction > request.dirty_fallback_threshold) {
    index_.FullRebuild(table, request.x_column, pool);
    rebuild_graph_ = true;
    join_rebuild_ = true;
    ++stats_.fallback_full_builds;
  } else {
    // Accumulated across every sync between graph updates (generate- and
    // ask-stage readers sync too); consumed by the next DeltaUpdate /
    // SyncSimJoin respectively.
    index_.Fold(table, request.x_column, dirty, &pending_join_spellings_);
    ++stats_.index_folds;
    pending_payload_rows_.insert(dirty.begin(), dirty.end());
  }
  return index_;
}

const IncrementalSimJoin& ErgCache::SyncSimJoin(
    const Table& table, const ErgRequest& request,
    const SimJoinOptions& join_options, ThreadPool* pool) {
  VC_CHECK(request.x_column != ErgRequest::kNoColumn,
           "SyncSimJoin requires an X column");
  SyncValueIndex(table, request, pool);

  auto rebuild = [&](bool dirty_fallback) {
    std::vector<std::string> items;
    items.reserve(index_.num_spellings());
    for (const auto& [spelling, rows] : index_.rows_of()) {
      items.push_back(spelling);
    }
    sim_join_.Rebuild(items, join_options, pool, dirty_fallback);
    join_rebuild_ = false;
    pending_join_spellings_.clear();
  };

  if (join_rebuild_ || !sim_join_.OptionsMatch(join_options)) {
    // An index full rebuild counts as a join dirty-fraction fallback only
    // when a maintained join actually got discarded by it.
    rebuild(/*dirty_fallback=*/join_rebuild_ &&
            sim_join_.OptionsMatch(join_options));
    return sim_join_;
  }
  if (pending_join_spellings_.empty()) return sim_join_;

  // Net the touched spellings against the current item set: only
  // live-but-absent (insert) and dead-but-present (retract) survive; a
  // spelling that died and revived between syncs nets to a no-op.
  std::vector<std::string> inserts, retracts;
  for (const std::string& s : pending_join_spellings_) {
    bool live = index_.Count(s) > 0;
    bool present = sim_join_.Contains(s);
    if (live && !present) {
      inserts.push_back(s);
    } else if (!live && present) {
      retracts.push_back(s);
    }
  }
  double fraction =
      static_cast<double>(inserts.size() + retracts.size()) /
      static_cast<double>(std::max<size_t>(1, sim_join_.num_items()));
  if (fraction > request.dirty_fallback_threshold) {
    rebuild(/*dirty_fallback=*/true);
  } else {
    if (!inserts.empty() || !retracts.empty()) {
      sim_join_.ApplyDelta(retracts, inserts, fraction);
    }
    pending_join_spellings_.clear();
  }
  return sim_join_;
}

const ErgSelectSupport* ErgCache::RefreshSelectSupport(const Erg& published,
                                                       Arena* arena) {
  select_support_.Refresh(published, arena);
  ++stats_.support_refreshes;
  return &select_support_;
}

size_t ErgCache::EnsureVertex(size_t row) { return EnsureVertexIn(&work_, row); }

void ErgCache::AddEdgeForPair(const RowPair& pair, SourceInfo info) {
  ErgEdge edge;
  edge.u = EnsureVertex(pair.first);
  edge.v = EnsureVertex(pair.second);
  VC_CHECK(work_.EdgeBetween(edge.u, edge.v) == Erg::kNoEdge,
           "ErgCache: inserting a duplicate edge for a row pair");
  work_.AddEdge(std::move(edge));
  edge_source_[pair] = std::move(info);
  ++stats_.edges_inserted;
}

void ErgCache::RetractEdgeForPair(const RowPair& pair) {
  size_t u = work_.VertexOfRow(pair.first);
  size_t v = work_.VertexOfRow(pair.second);
  VC_CHECK(u != Erg::kNoVertex && v != Erg::kNoVertex,
           "ErgCache: retracting an edge with missing endpoints");
  size_t e = work_.EdgeBetween(u, v);
  VC_CHECK(e != Erg::kNoEdge, "ErgCache: retracting an absent edge");
  work_.RetractEdge(e);
  ++stats_.edges_retracted;
}

void ErgCache::SweepIsolatedVertices() {
  for (size_t v = 0; v < work_.num_vertices(); ++v) {
    if (!work_.vertex_live(v)) continue;
    if (!work_.IncidentEdges(v).empty()) continue;
    const ErgVertex& vertex = work_.vertex(v);
    if (vertex.missing.has_value() || vertex.outlier.has_value()) continue;
    work_.RetractVertex(v);
  }
}

void ErgCache::FullGraphBuild(const Table& table, const QuestionStore& store,
                              const EmModel& em, const ErgRequest& request,
                              PairFeatureCache* features,
                              const KernelEnv& kenv) {
  work_ = Erg();
  edge_source_.clear();
  promoted_.clear();

  AssemblyEnv env;
  env.table = &table;
  env.store = &store;
  env.em = &em;
  env.request = &request;
  env.index = &index_;
  env.memo = &jaccard_memo_;
  env.stats = &stats_;
  env.features = features;
  env.kernel = kenv;

  std::map<std::pair<size_t, size_t>, bool> tuple_sourced;
  BuildSlots(env, &work_, &tuple_sourced, &promoted_);
  for (const auto& [pair, is_tuple] : tuple_sourced) {
    SourceInfo info;
    info.source = is_tuple ? EdgeSource::kTuple : EdgeSource::kPromotedA;
    edge_source_[pair] = info;
  }
  for (const auto& [akey, pair] : promoted_) {
    edge_source_[pair].akey = akey;
  }
  RefreshAllPayloads(env, &work_, [&](std::pair<size_t, size_t> pair) {
    return edge_source_.at(pair).source == EdgeSource::kTuple;
  });
  pending_payload_rows_.clear();  // everything was just recomputed
  ++stats_.full_builds;
  primed_ = true;
  rebuild_graph_ = false;
}

void ErgCache::DeltaUpdate(const Table& table, const QuestionStore& store,
                           const EmModel& em, const ErgRequest& request,
                           PairFeatureCache* features, const KernelEnv& kenv) {
  AssemblyEnv env;
  env.table = &table;
  env.store = &store;
  env.em = &em;
  env.request = &request;
  env.index = &index_;
  env.memo = &jaccard_memo_;
  env.stats = &stats_;
  env.features = features;
  env.kernel = kenv;

  const QuestionDelta& delta = store.last_delta();

  // 1. T-question delta: retire edges whose question left the pool, insert
  //    edges for new questions (taking over pairs currently held by an
  //    A-promotion — the promotion diff below retires its bookkeeping).
  for (const TQuestionKey& key : delta.t_removed) {
    auto it = edge_source_.find(key);
    if (it != edge_source_.end() && it->second.source == EdgeSource::kTuple) {
      RetractEdgeForPair(key);
      edge_source_.erase(it);
    }
  }
  for (const TQuestion& q : delta.t_added) {
    TQuestionKey key = KeyOf(q);
    auto it = edge_source_.find(key);
    if (it != edge_source_.end()) {
      if (it->second.source != EdgeSource::kPromotedA) continue;
      RetractEdgeForPair(key);
      edge_source_.erase(it);
    }
    SourceInfo info;
    info.source = EdgeSource::kTuple;
    AddEdgeForPair(key, info);
  }

  // 2. Promotion diff: recompute the canonical promoted set against the new
  //    pools/representatives, retire promotions that fell out or moved, add
  //    the new ones.
  std::map<AQuestionKey, RowPair> next_promoted = SelectPromotions(env);
  for (const auto& [akey, pair] : promoted_) {
    auto it = next_promoted.find(akey);
    if (it != next_promoted.end() && it->second == pair) continue;
    auto sit = edge_source_.find(pair);
    if (sit != edge_source_.end() &&
        sit->second.source == EdgeSource::kPromotedA &&
        sit->second.akey == akey) {
      RetractEdgeForPair(pair);
      edge_source_.erase(sit);
    }
  }
  for (const auto& [akey, pair] : next_promoted) {
    auto it = promoted_.find(akey);
    if (it != promoted_.end() && it->second == pair) continue;
    SourceInfo info;
    info.source = EdgeSource::kPromotedA;
    info.akey = akey;
    AddEdgeForPair(pair, std::move(info));
  }
  promoted_ = std::move(next_promoted);

  // 3. M/O payload delta: refresh the vertices of rows whose questions
  //    changed (creating vertices for brand-new question rows).
  std::set<size_t> payload_rows;
  for (const MQuestion& q : delta.m_added) {
    EnsureVertex(q.row);
    payload_rows.insert(q.row);
  }
  for (const MQuestion& q : delta.m_updated) payload_rows.insert(q.row);
  for (const CellQuestionKey& key : delta.m_removed) {
    payload_rows.insert(key.first);
  }
  for (const OQuestion& q : delta.o_added) {
    EnsureVertex(q.row);
    payload_rows.insert(q.row);
  }
  for (const OQuestion& q : delta.o_updated) payload_rows.insert(q.row);
  for (const CellQuestionKey& key : delta.o_removed) {
    payload_rows.insert(key.first);
  }
  for (size_t row : payload_rows) {
    RefreshVertexPayload(env, &work_, row);
  }

  // 4. Selective edge payload refresh: recompute exactly the payloads with
  //    a changed input. A payload is a pure function of (t_pool entry | EM
  //    probability of the rows), the endpoints' X spellings, and the a_pool
  //    entry of the current spelling pair, so the refresh set is
  //     * every promoted-A edge (the EM model retrains each iteration);
  //     * edges whose T-question was added or re-scored;
  //     * edges incident to a journal-dirty row (spelling / features);
  //     * T-edges whose current spelling-pair A-question churned.
  //    The full-build paths still recompute everything (RefreshAllPayloads).
  std::set<RowPair> refresh;
  for (const auto& [akey, pair] : promoted_) refresh.insert(pair);
  for (const TQuestion& q : delta.t_added) refresh.insert(KeyOf(q));
  for (const TQuestion& q : delta.t_updated) refresh.insert(KeyOf(q));
  for (size_t row : pending_payload_rows_) {
    size_t v = work_.VertexOfRow(row);
    if (v == Erg::kNoVertex) continue;
    for (size_t e : work_.IncidentEdges(v)) {
      const ErgEdge& edge = work_.edge(e);
      refresh.insert(RowPair(
          std::minmax(work_.vertex(edge.u).row, work_.vertex(edge.v).row)));
    }
  }
  std::set<AQuestionKey> churned_akeys;
  for (const AQuestion& q : delta.a_added) churned_akeys.insert(KeyOf(q));
  for (const AQuestion& q : delta.a_updated) churned_akeys.insert(KeyOf(q));
  for (const AQuestionKey& key : delta.a_removed) churned_akeys.insert(key);
  if (!churned_akeys.empty() &&
      request.x_column != ErgRequest::kNoColumn) {
    for (size_t e = 0; e < work_.num_edges(); ++e) {
      if (!work_.edge_live(e)) continue;
      const ErgEdge& edge = work_.edge(e);
      RowPair pair(
          std::minmax(work_.vertex(edge.u).row, work_.vertex(edge.v).row));
      const std::optional<std::string>& sa = index_.SpellingOf(pair.first);
      const std::optional<std::string>& sb = index_.SpellingOf(pair.second);
      if (!sa.has_value() || !sb.has_value() || *sa == *sb) continue;
      AQuestionKey akey{request.x_column, std::minmax(*sa, *sb)};
      if (churned_akeys.count(akey) > 0) refresh.insert(pair);
    }
  }
  // Resolve the refresh set to live edges, batch the promoted-A EM
  // probabilities (one MatchProbabilities call over all of them), then fill.
  std::vector<size_t> refresh_edges;
  std::vector<RowPair> refresh_pairs;
  std::vector<char> refresh_tuple;
  std::vector<RowPair> em_pairs;
  for (const RowPair& pair : refresh) {
    size_t u = work_.VertexOfRow(pair.first);
    size_t v = work_.VertexOfRow(pair.second);
    if (u == Erg::kNoVertex || v == Erg::kNoVertex) continue;
    size_t e = work_.EdgeBetween(u, v);
    if (e == Erg::kNoEdge) continue;
    bool is_tuple = edge_source_.at(pair).source == EdgeSource::kTuple;
    refresh_edges.push_back(e);
    refresh_pairs.push_back(pair);
    refresh_tuple.push_back(is_tuple ? 1 : 0);
    if (!is_tuple) em_pairs.push_back(pair);
  }
  std::vector<double> em_probs =
      em.MatchProbabilities(table, em_pairs, features, kenv);
  size_t next_em = 0;
  for (size_t i = 0; i < refresh_edges.size(); ++i) {
    double p = refresh_tuple[i] != 0 ? 0.0 : em_probs[next_em++];
    FillEdgePayload(env, refresh_pairs[i].first, refresh_pairs[i].second,
                    refresh_tuple[i] != 0, p, &work_.edge(refresh_edges[i]));
    ++stats_.payload_refreshes;
  }
  pending_payload_rows_.clear();

  // 5. Vertices left with no live edges and no question payload are gone
  //    from the canonical graph; retract their slots.
  SweepIsolatedVertices();
  ++stats_.delta_updates;
}

void ErgCache::BeginIteration(const Table& table, const QuestionStore& store,
                              const EmModel& em, const ErgRequest& request,
                              PairFeatureCache* features, const KernelEnv& env,
                              Erg* out) {
  SyncValueIndex(table, request, env.pool);  // also runs EnsureConfig
  if (!primed_ || rebuild_graph_) {
    FullGraphBuild(table, store, em, request, features, env);
  } else {
    DeltaUpdate(table, store, em, request, features, env);
  }
  if (work_.edge_tombstone_fraction() > request.compact_tombstone_fraction) {
    work_ = work_.Compacted();
    ++stats_.slot_compactions;
  }
  *out = work_.Compacted();
}

void ErgCache::ResyncRolledBack(const Table& table) {
  if (!primed_ && !index_.primed()) return;
  watermark_ = table.mutation_count();
}

void ErgCache::Clear() {
  primed_ = false;
  rebuild_graph_ = false;
  fingerprint_.clear();
  watermark_ = 0;
  stats_ = ErgStats();
  index_.Clear();
  work_ = Erg();
  edge_source_.clear();
  promoted_.clear();
  jaccard_memo_.clear();
  pending_payload_rows_.clear();
  sim_join_.Clear();
  pending_join_spellings_.clear();
  join_rebuild_ = false;
  select_support_.Clear();
}

}  // namespace visclean
