// Convenience runners shared by benches/examples: the Single-question
// baseline configuration (Section VII, algorithm (vi)) and the
// run-until-quality loop used by the robustness experiment (Table VI).
#ifndef VISCLEAN_CORE_SINGLE_QUESTION_H_
#define VISCLEAN_CORE_SINGLE_QUESTION_H_

#include "core/session.h"

namespace visclean {

/// Session options for the Single baseline: same budget/seed as `base` but
/// m isolated questions per iteration instead of one CQG. The unit-cost
/// convention follows the paper: one CQG with m edges counts as one unit,
/// one single question as 1/m.
SessionOptions MakeSingleOptions(const SessionOptions& base);

/// \brief Outcome of RunUntilEmd.
struct RunUntilResult {
  size_t iterations_used = 0;   ///< iterations actually run
  double final_emd = 0.0;       ///< EMD after the last iteration
  bool reached_target = false;  ///< final_emd <= target before the cap
  std::vector<IterationTrace> traces;  ///< per-iteration records
};

/// Runs `session` until EMD(Q(D), Q(D_g)) <= `emd_target` or
/// `max_iterations` is hit (whichever first). The session must not have
/// been run yet.
Result<RunUntilResult> RunUntilEmd(VisCleanSession* session, double emd_target,
                                   size_t max_iterations);

}  // namespace visclean

#endif  // VISCLEAN_CORE_SINGLE_QUESTION_H_
