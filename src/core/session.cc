#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/thread_pool.h"
#include "dist/emd.h"
#include "vql/executor.h"

namespace visclean {

namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

VisCleanSession::VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                                 SessionOptions options,
                                 UserOptions user_options,
                                 UserCostModel cost_model)
    : oracle_(oracle),
      ctx_(oracle, std::move(query), options, user_options, cost_model) {}

VisCleanSession::~VisCleanSession() = default;

Status VisCleanSession::Initialize() {
  if (initialized_) return Status::Ok();
  Result<std::unique_ptr<CqgSelector>> selector =
      MakeSelector(ctx_.options.selector, ctx_.options.seed);
  if (!selector.ok()) return selector.status();
  ctx_.selector = std::move(selector).value();
  if (ctx_.options.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(ctx_.options.threads);
    ctx_.pool = pool_.get();
  }
  // Validate the query against the table once up front.
  Result<VisData> vis = ExecuteVql(ctx_.query, ctx_.table);
  if (!vis.ok()) return vis.status();
  stages_ = MakeStages(ctx_.options.strategy);
  initialized_ = true;
  return Status::Ok();
}

Result<IterationTrace> VisCleanSession::RunIteration() {
  if (!initialized_) {
    return Status::Internal("call Initialize() before RunIteration()");
  }
  ctx_.trace = IterationTrace();
  ctx_.trace.iteration = ++iteration_;

  for (const std::unique_ptr<PipelineStage>& stage : stages_) {
    Stopwatch watch;
    VC_RETURN_IF_ERROR(stage->Run(ctx_));
    double seconds = watch.Seconds();
    ctx_.trace.stage_times.push_back({stage->name(), seconds});
    switch (stage->bucket()) {
      case StageBucket::kDetect:
        ctx_.trace.machine.detect += seconds;
        break;
      case StageBucket::kTrain:
        ctx_.trace.machine.train += seconds;
        break;
      case StageBucket::kBenefit:
        ctx_.trace.machine.benefit += seconds;
        break;
      case StageBucket::kSelect:
        ctx_.trace.machine.select += seconds;
        break;
      case StageBucket::kApply:
        ctx_.trace.machine.apply += seconds;
        break;
    }
  }

  ctx_.trace.emd = CurrentEmd();

  // Journal compaction for all incremental consumers: each holds its own
  // watermark, so the journal may only be trimmed up to the minimum —
  // anything later is still unread by at least one cache.
  uint64_t upto = 0;
  bool have_consumer = false;
  auto fold = [&](bool primed, uint64_t watermark) {
    if (!primed) return;
    upto = have_consumer ? std::min(upto, watermark) : watermark;
    have_consumer = true;
  };
  fold(ctx_.benefit_engine.primed(), ctx_.benefit_engine.watermark());
  fold(ctx_.detection.primed(), ctx_.detection.watermark());
  fold(ctx_.erg_cache.primed(), ctx_.erg_cache.watermark());
  if (have_consumer) ctx_.table.CompactJournal(upto);

  return ctx_.trace;
}

Result<std::vector<IterationTrace>> VisCleanSession::Run() {
  VC_RETURN_IF_ERROR(Initialize());
  std::vector<IterationTrace> traces;
  IterationTrace initial;
  initial.iteration = 0;
  initial.emd = CurrentEmd();
  traces.push_back(initial);
  for (size_t i = 0; i < ctx_.options.budget; ++i) {
    Result<IterationTrace> trace = RunIteration();
    if (!trace.ok()) return trace.status();
    traces.push_back(std::move(trace).value());
  }
  return traces;
}

Result<VisData> VisCleanSession::CurrentVis() const {
  return ExecuteVql(ctx_.query, ctx_.table);
}

Result<VisData> VisCleanSession::GroundTruthVis() const {
  return ExecuteVql(ctx_.query, oracle_->clean);
}

double VisCleanSession::CurrentEmd() const {
  Result<VisData> current = CurrentVis();
  Result<VisData> truth = GroundTruthVis();
  if (!current.ok() || !truth.ok()) return 0.0;
  return EmdDistance(current.value(), truth.value());
}

}  // namespace visclean
