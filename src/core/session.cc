#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "clean/a_question_gen.h"
#include "clean/missing_detector.h"
#include "clean/outlier_detector.h"
#include "clean/repair.h"
#include "core/benefit_model.h"
#include "dist/emd.h"
#include "em/active_learning.h"
#include "em/blocking.h"
#include "em/clustering.h"
#include "text/similarity.h"
#include "vql/executor.h"

namespace visclean {

namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Machine auto-merge waits for this many user labels (see RunIteration).
constexpr size_t kMinLabelsForAutoMerge = 5;

}  // namespace

VisCleanSession::VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                                 SessionOptions options,
                                 UserOptions user_options,
                                 UserCostModel cost_model)
    : oracle_(oracle),
      query_(std::move(query)),
      options_(options),
      cost_model_(cost_model),
      table_(oracle->dirty.Clone()),
      user_(oracle, user_options),
      em_(options.forest) {}

size_t VisCleanSession::XColumnOrNpos() const {
  // The column whose attribute-level duplicates hurt this query: a
  // categorical X axis, or — as in Q7, where the predicate "Venue =
  // 'SIGMOD'" silently drops synonym rows — the first categorical column a
  // WHERE conjunct references.
  Result<size_t> col = table_.schema().IndexOf(query_.x_column);
  if (col.ok() &&
      table_.schema().column(col.value()).type == ColumnType::kCategorical) {
    return col.value();
  }
  for (const Predicate& p : query_.predicates) {
    Result<size_t> pc = table_.schema().IndexOf(p.column);
    if (pc.ok() &&
        table_.schema().column(pc.value()).type == ColumnType::kCategorical) {
      return pc.value();
    }
  }
  return BenefitOptions::kNoColumn;
}

Status VisCleanSession::Initialize() {
  if (initialized_) return Status::Ok();
  Result<std::unique_ptr<CqgSelector>> selector =
      MakeSelector(options_.selector, options_.seed);
  if (!selector.ok()) return selector.status();
  selector_ = std::move(selector).value();
  // Validate the query against the table once up front.
  Result<VisData> vis = ExecuteVql(query_, table_);
  if (!vis.ok()) return vis.status();
  initialized_ = true;
  return Status::Ok();
}

void VisCleanSession::DetectQuestions(ComponentTimes* times) {
  questions_ = QuestionSet();

  // ---- Detection: blocking + kNN detectors (Fig. 18 "Detect Errors") ----
  Stopwatch detect_watch;
  BlockingOptions blocking;
  for (const ColumnSpec& col : table_.schema().columns()) {
    if (col.type == ColumnType::kText) blocking.key_columns.push_back(col.name);
  }
  if (blocking.key_columns.empty()) {
    for (const ColumnSpec& col : table_.schema().columns()) {
      if (col.type == ColumnType::kCategorical) {
        blocking.key_columns.push_back(col.name);
      }
    }
  }
  blocking.max_block_size = options_.blocking_max_block;
  candidates_ = TokenBlocking(table_, blocking);

  Result<size_t> y_col = table_.schema().IndexOf(query_.y_column);
  if (y_col.ok() &&
      table_.schema().column(y_col.value()).type == ColumnType::kNumeric) {
    MissingDetectorOptions missing_options;
    missing_options.max_questions = options_.max_m_questions;
    questions_.m_questions =
        DetectMissing(table_, y_col.value(), missing_options);
    questions_.o_questions = DetectOutliers(table_, y_col.value());
    // Drop outlier verdicts the user already gave.
    std::erase_if(questions_.o_questions, [&](const OQuestion& q) {
      return o_answered_.count({q.row, q.column}) > 0;
    });
  }
  times->detect += detect_watch.Seconds();

  // ---- Train / fine-tune the EM model (Fig. 18 "Train Models") ----
  Stopwatch train_watch;
  std::vector<std::pair<size_t, size_t>> training_candidates = candidates_;
  if (training_candidates.size() > options_.max_seed_examples) {
    // Deterministic thinning keeps retraining affordable on large tables.
    Rng rng(options_.seed + retrain_counter_);
    rng.Shuffle(training_candidates);
    training_candidates.resize(options_.max_seed_examples);
  }
  em_.Retrain(table_, training_candidates, options_.seed + retrain_counter_);
  ++retrain_counter_;
  scored_ = em_.ScoreAll(table_, candidates_);
  times->train += train_watch.Seconds();

  // ---- Question generation (back under "Detect Errors") ----
  Stopwatch gen_watch;
  ActiveLearningOptions al_options;
  al_options.max_questions = options_.max_t_questions;
  for (const ScoredPair& p : SelectUncertainPairs(scored_, em_, al_options)) {
    questions_.t_questions.push_back({p.a, p.b, p.probability});
  }

  size_t x_col = XColumnOrNpos();
  if (x_col != BenefitOptions::kNoColumn) {
    ClusteringOptions cluster_options;
    cluster_options.auto_merge_threshold = options_.auto_merge_threshold;
    EntityClusters clusters =
        ClusterEntities(table_.num_rows(), scored_, em_, cluster_options);
    AQuestionOptions a_options;
    a_options.lambda = options_.sim_join_lambda;
    questions_.a_questions =
        GenerateAQuestions(table_, clusters.clusters, x_col, a_options);
    // Fold in the spelling pairs witnessed by machine-merged clusters,
    // keeping only those whose variant spelling still occurs in live data.
    std::set<std::string> live_spellings;
    for (size_t r : table_.LiveRowIds()) {
      const Value& v = table_.at(r, x_col);
      if (!v.is_null()) live_spellings.insert(v.ToDisplayString());
    }
    std::set<std::pair<std::string, std::string>> present;
    for (const AQuestion& q : questions_.a_questions) {
      present.insert(std::minmax(q.value_a, q.value_b));
    }
    std::erase_if(merge_witnessed_a_, [&](const AQuestion& q) {
      return live_spellings.count(q.value_a) == 0 ||
             live_spellings.count(q.value_b) == 0 ||
             a_answered_.count(std::minmax(q.value_a, q.value_b)) > 0;
    });
    for (const AQuestion& q : merge_witnessed_a_) {
      if (present.insert(std::minmax(q.value_a, q.value_b)).second) {
        questions_.a_questions.push_back(q);
      }
    }
    // Drop spelling pairs the user already ruled on.
    std::erase_if(questions_.a_questions, [&](const AQuestion& q) {
      return a_answered_.count(std::minmax(q.value_a, q.value_b)) > 0;
    });
  }
  times->detect += gen_watch.Seconds();
}

void VisCleanSession::BuildErg() {
  erg_ = Erg();
  size_t x_col = XColumnOrNpos();

  // A-question lookup: unordered spelling pair -> similarity.
  std::map<std::pair<std::string, std::string>, const AQuestion*> a_lookup;
  for (const AQuestion& q : questions_.a_questions) {
    a_lookup[std::minmax(q.value_a, q.value_b)] = &q;
  }

  // Vertices: every row mentioned by a T-question, plus rows with M-/O-
  // questions (they may stay isolated; the Single strategy still reaches
  // them, and composite picks them up once an edge appears).
  std::map<size_t, size_t> vertex_of_row;
  auto ensure_vertex = [&](size_t row) {
    auto it = vertex_of_row.find(row);
    if (it != vertex_of_row.end()) return it->second;
    ErgVertex v;
    v.row = row;
    size_t idx = erg_.AddVertex(std::move(v));
    vertex_of_row[row] = idx;
    return idx;
  };

  for (const TQuestion& q : questions_.t_questions) {
    ensure_vertex(q.row_a);
    ensure_vertex(q.row_b);
  }
  for (const MQuestion& q : questions_.m_questions) {
    erg_.vertex(ensure_vertex(q.row)).missing = q;
  }
  for (const OQuestion& q : questions_.o_questions) {
    erg_.vertex(ensure_vertex(q.row)).outlier = q;
  }

  std::set<std::pair<size_t, size_t>> edge_keys;
  for (const TQuestion& q : questions_.t_questions) {
    ErgEdge edge;
    edge.u = vertex_of_row[q.row_a];
    edge.v = vertex_of_row[q.row_b];
    edge_keys.insert(std::minmax(edge.u, edge.v));
    edge.p_tuple = q.probability;
    if (x_col != BenefitOptions::kNoColumn) {
      const Value& xa = table_.at(q.row_a, x_col);
      const Value& xb = table_.at(q.row_b, x_col);
      if (!xa.is_null() && !xb.is_null()) {
        std::string sa = xa.ToDisplayString();
        std::string sb = xb.ToDisplayString();
        if (sa != sb) {
          edge.has_attr = true;
          auto it = a_lookup.find(std::minmax(sa, sb));
          if (it != a_lookup.end()) {
            edge.attr_question = *it->second;
            edge.p_attr = it->second->similarity;
          } else {
            edge.attr_question.column = x_col;
            edge.attr_question.value_a = sa;
            edge.attr_question.value_b = sb;
            edge.p_attr = WordJaccard(sa, sb);
            edge.attr_question.similarity = edge.p_attr;
          }
        }
      }
    }
    erg_.AddEdge(std::move(edge));
  }

  // A-question edges (Definition 2.1: an edge exists when two tuples are
  // possible tuple- OR attribute-level duplicates): each attribute-level
  // candidate pairs one representative tuple per spelling, so the composite
  // question can standardize bars even where the EM model has no uncertain
  // tuple pair.
  if (x_col != BenefitOptions::kNoColumn) {
    std::map<std::string, size_t> row_of_value;
    for (size_t r : table_.LiveRowIds()) {
      const Value& v = table_.at(r, x_col);
      if (v.is_null()) continue;
      row_of_value.emplace(v.ToDisplayString(), r);  // first live row wins
    }
    size_t added = 0;
    for (const AQuestion& q : questions_.a_questions) {
      if (added >= options_.max_t_questions) break;
      auto it_a = row_of_value.find(q.value_a);
      auto it_b = row_of_value.find(q.value_b);
      if (it_a == row_of_value.end() || it_b == row_of_value.end()) continue;
      if (it_a->second == it_b->second) continue;
      size_t u = ensure_vertex(it_a->second);
      size_t v = ensure_vertex(it_b->second);
      if (u == v || !edge_keys.insert(std::minmax(u, v)).second) continue;
      ErgEdge edge;
      edge.u = u;
      edge.v = v;
      edge.p_tuple = em_.MatchProbability(table_, it_a->second, it_b->second);
      edge.has_attr = true;
      edge.attr_question = q;
      edge.p_attr = q.similarity;
      erg_.AddEdge(std::move(edge));
      ++added;
    }
  }
}

void VisCleanSession::VoteTransformation(size_t column,
                                         const std::string& variant,
                                         const std::string& target,
                                         const std::vector<size_t>& local_rows) {
  if (variant == target || target.empty()) return;
  // Local repair: the rows the user actually looked at.
  for (size_t r : local_rows) {
    if (table_.is_dead(r)) continue;
    const Value& v = table_.at(r, column);
    if (!v.is_null() && v.ToDisplayString() == variant) {
      table_.Set(r, column, Value::String(target));
    }
  }
  auto& vote = transform_votes_[variant];
  if (vote.first == target) {
    ++vote.second;
  } else {
    vote = {target, 1};
  }
  if (vote.second >= 2) {
    ApplyTransformation(&table_, column, variant, target);
  }
}

void VisCleanSession::RecordWitnessedSpellings(
    const std::vector<size_t>& rows) {
  size_t x_col = XColumnOrNpos();
  if (x_col == BenefitOptions::kNoColumn) return;
  std::set<std::string> spellings;
  std::map<std::string, size_t> freq;
  for (size_t r : rows) {
    if (table_.is_dead(r)) continue;
    const Value& v = table_.at(r, x_col);
    if (v.is_null()) continue;
    std::string sp = v.ToDisplayString();
    spellings.insert(sp);
    ++freq[sp];
  }
  if (spellings.size() < 2) return;
  std::string target;
  size_t best = 0;
  for (const auto& [sp, n] : freq) {
    if (n > best) {
      best = n;
      target = sp;
    }
  }
  for (const std::string& sp : spellings) {
    if (sp == target) continue;
    if (a_answered_.count(std::minmax(sp, target))) continue;
    AQuestion q;
    q.column = x_col;
    q.value_a = sp;
    q.value_b = target;
    q.similarity = 0.9;  // cluster co-membership is strong evidence
    merge_witnessed_a_.push_back(std::move(q));
  }
}

void VisCleanSession::StandardizeXAcrossRows(const std::vector<size_t>& rows,
                                              bool ask_user) {
  size_t x_col = XColumnOrNpos();
  if (x_col == BenefitOptions::kNoColumn) return;
  // Distinct spellings carried by the co-referring rows.
  std::set<std::string> spellings;
  for (size_t r : rows) {
    if (table_.is_dead(r)) continue;
    const Value& v = table_.at(r, x_col);
    if (!v.is_null()) spellings.insert(v.ToDisplayString());
  }
  if (spellings.size() < 2) return;
  // The user merging these tuples also answers "which value should be
  // used?" — standardize on their preferred spelling. Machine-initiated
  // merges (ask_user = false) must not consume user knowledge and fall
  // back to the globally most frequent spelling (golden-record election).
  std::string target;
  if (ask_user) {
    // The user resolves every witnessed spelling to their preferred form;
    // the first resolution that differs from its input reveals it.
    for (const std::string& sp : spellings) {
      std::string preferred = user_.PreferredSpelling(x_col, sp);
      if (!preferred.empty()) {
        target = preferred;
        break;
      }
    }
  }
  if (target.empty()) {
    std::map<std::string, size_t> freq;
    for (size_t r : table_.LiveRowIds()) {
      const Value& v = table_.at(r, x_col);
      if (v.is_null()) continue;
      std::string s = v.ToDisplayString();
      if (spellings.count(s)) ++freq[s];
    }
    size_t best = 0;
    for (const auto& [s, n] : freq) {
      if (n > best) {
        best = n;
        target = s;
      }
    }
  }
  if (target.empty()) return;
  for (const std::string& sp : spellings) {
    if (sp == target) continue;
    if (ask_user) {
      VoteTransformation(x_col, sp, target, rows);
    } else {
      // Machine-initiated merges only consolidate the rows at hand.
      for (size_t r : rows) {
        if (table_.is_dead(r)) continue;
        const Value& v = table_.at(r, x_col);
        if (!v.is_null() && v.ToDisplayString() == sp) {
          table_.Set(r, x_col, Value::String(target));
        }
      }
    }
  }
}

void VisCleanSession::ApplyConfirmedMatch(size_t row_a, size_t row_b) {
  StandardizeXAcrossRows({row_a, row_b});
  MergeRows(&table_, {row_a, row_b});
}

Result<IterationTrace> VisCleanSession::RunIteration() {
  if (!initialized_) {
    return Status::Internal("call Initialize() before RunIteration()");
  }
  return options_.strategy == QuestionStrategy::kComposite
             ? RunCompositeIteration()
             : RunSingleIteration();
}

Result<IterationTrace> VisCleanSession::RunCompositeIteration() {
  IterationTrace trace;
  trace.iteration = ++iteration_;

  DetectQuestions(&trace.machine);

  // ---- ERG + benefit estimation ----
  Stopwatch benefit_watch;
  BuildErg();
  BenefitOptions benefit_options;
  benefit_options.x_column = XColumnOrNpos();
  EstimateBenefits(query_, &table_, &erg_, benefit_options);
  trace.machine.benefit += benefit_watch.Seconds();

  // ---- CQG selection ----
  Stopwatch select_watch;
  Cqg cqg = selector_->Select(erg_, options_.k);
  if (cqg.empty()) {
    // No edges remain (duplicates resolved) but isolated vertices may still
    // carry M-/O-questions: present up to k of them as one vertex-only
    // composite so the budgeted loop can finish the cleaning job.
    for (size_t v = 0; v < erg_.num_vertices() && cqg.vertices.size() < options_.k;
         ++v) {
      const ErgVertex& vertex = erg_.vertex(v);
      if (vertex.missing.has_value() || vertex.outlier.has_value()) {
        cqg.vertices.push_back(v);
      }
    }
  }
  trace.machine.select += select_watch.Seconds();
  trace.cqg_benefit = cqg.total_benefit;

  // ---- User interaction + repairs ----
  Stopwatch apply_watch;
  size_t vertex_questions = 0;
  for (size_t e : cqg.edge_indices) {
    const ErgEdge& edge = erg_.edge(e);
    size_t row_a = erg_.vertex(edge.u).row;
    size_t row_b = erg_.vertex(edge.v).row;
    if (table_.is_dead(row_a) || table_.is_dead(row_b)) continue;
    std::optional<bool> confirm =
        user_.AnswerT({row_a, row_b, edge.p_tuple});
    if (!confirm.has_value()) continue;  // incomplete answer
    if (*confirm) {
      em_.AddLabel(row_a, row_b, true);
      ApplyConfirmedMatch(row_a, row_b);
    } else {
      em_.AddLabel(row_a, row_b, false);
      // Tuples differ, but the spellings may still be synonyms (distinct
      // papers at the same venue): the GUI's follow-up A-question.
      if (edge.has_attr) {
        std::optional<AttributeAnswer> answer =
            user_.AnswerA(edge.attr_question);
        if (answer.has_value()) {
          a_answered_.insert(std::minmax(edge.attr_question.value_a,
                                         edge.attr_question.value_b));
          if (answer->same) {
            // Standardize both spellings on the user's preferred form:
            // repair the edge's rows now, go table-wide on corroboration.
            for (const std::string* s : {&edge.attr_question.value_a,
                                         &edge.attr_question.value_b}) {
              VoteTransformation(edge.attr_question.column, *s,
                                 answer->preferred, {row_a, row_b});
            }
          }
        }
      }
    }
  }
  for (size_t v : cqg.vertices) {
    const ErgVertex& vertex = erg_.vertex(v);
    if (table_.is_dead(vertex.row)) continue;
    if (vertex.missing.has_value() &&
        table_.at(vertex.missing->row, vertex.missing->column).is_null()) {
      std::optional<double> value = user_.AnswerM(*vertex.missing);
      if (value.has_value()) {
        ApplyCellRepair(&table_, vertex.missing->row, vertex.missing->column,
                        *value);
      }
      ++vertex_questions;
    }
    if (vertex.outlier.has_value()) {
      std::optional<OutlierAnswer> answer = user_.AnswerO(*vertex.outlier);
      if (answer.has_value()) {
        o_answered_.insert({vertex.outlier->row, vertex.outlier->column});
        if (answer->is_outlier) {
          ApplyCellRepair(&table_, vertex.outlier->row,
                          vertex.outlier->column, answer->repair);
        }
      }
      ++vertex_questions;
    }
  }

  // Machine auto-merge: confident clusters collapse without user effort
  // ("many tuple-level duplicates are removed by the EM model"). Gated on a
  // few user labels: the unsupervised bootstrap model must not rewrite the
  // dataset before the user has taught it anything.
  if (em_.num_labels() < kMinLabelsForAutoMerge) {
    trace.machine.apply += apply_watch.Seconds();
    trace.questions_asked = cqg.edge_indices.size() + vertex_questions;
    trace.user_seconds =
        cost_model_.CqgSeconds(cqg.edge_indices.size(), vertex_questions);
    trace.emd = CurrentEmd();
    return trace;
  }
  ClusteringOptions cluster_options;
  cluster_options.auto_merge_threshold = options_.auto_merge_threshold;
  EntityClusters clusters =
      ClusterEntities(table_.num_rows(), scored_, em_, cluster_options);
  for (const std::vector<size_t>& cluster : clusters.MultiMemberClusters()) {
    std::vector<size_t> live;
    for (size_t r : cluster) {
      if (!table_.is_dead(r)) live.push_back(r);
    }
    // Machine merges consolidate locally only: even a rare wrong cluster
    // would poison the whole column if its spellings were standardized
    // table-wide. The witnessed variant pairs become A-questions, so the
    // user-verified path performs the actual standardization.
    if (live.size() >= 2) {
      RecordWitnessedSpellings(live);
      MergeRows(&table_, live);
    }
  }
  trace.machine.apply += apply_watch.Seconds();

  trace.questions_asked = cqg.edge_indices.size() + vertex_questions;
  trace.user_seconds =
      cost_model_.CqgSeconds(cqg.edge_indices.size(), vertex_questions);
  trace.emd = CurrentEmd();
  return trace;
}

Result<IterationTrace> VisCleanSession::RunSingleIteration() {
  IterationTrace trace;
  trace.iteration = ++iteration_;

  DetectQuestions(&trace.machine);

  // The paper's Single baseline: m questions per iteration, m/4 from each
  // candidate set (padded from Q_T when a set runs short).
  Stopwatch apply_watch;
  size_t per_set = std::max<size_t>(1, options_.single_m / 4);
  size_t asked_t = 0, asked_a = 0, asked_m = 0, asked_o = 0;

  for (const TQuestion& q : questions_.t_questions) {
    if (asked_t >= per_set) break;
    if (table_.is_dead(q.row_a) || table_.is_dead(q.row_b)) continue;
    std::optional<bool> confirm = user_.AnswerT(q);
    ++asked_t;
    if (!confirm.has_value()) continue;
    em_.AddLabel(q.row_a, q.row_b, *confirm);
    if (*confirm) ApplyConfirmedMatch(q.row_a, q.row_b);
  }
  for (const AQuestion& q : questions_.a_questions) {
    if (asked_a >= per_set) break;
    std::optional<AttributeAnswer> answer = user_.AnswerA(q);
    ++asked_a;
    if (answer.has_value()) {
      a_answered_.insert(std::minmax(q.value_a, q.value_b));
      if (answer->same) {
        for (const std::string* s : {&q.value_a, &q.value_b}) {
          VoteTransformation(q.column, *s, answer->preferred, {});
        }
      }
    }
  }
  for (const MQuestion& q : questions_.m_questions) {
    if (asked_m >= per_set) break;
    if (table_.is_dead(q.row) || !table_.at(q.row, q.column).is_null()) {
      continue;
    }
    std::optional<double> value = user_.AnswerM(q);
    ++asked_m;
    if (value.has_value()) ApplyCellRepair(&table_, q.row, q.column, *value);
  }
  for (const OQuestion& q : questions_.o_questions) {
    if (asked_o >= per_set) break;
    if (table_.is_dead(q.row)) continue;
    std::optional<OutlierAnswer> answer = user_.AnswerO(q);
    ++asked_o;
    if (answer.has_value()) {
      o_answered_.insert({q.row, q.column});
      if (answer->is_outlier) {
        ApplyCellRepair(&table_, q.row, q.column, answer->repair);
      }
    }
  }
  // Pad with extra T-questions up to m.
  for (const TQuestion& q : questions_.t_questions) {
    if (asked_t + asked_a + asked_m + asked_o >= options_.single_m) break;
    if (asked_t >= questions_.t_questions.size()) break;
    if (table_.is_dead(q.row_a) || table_.is_dead(q.row_b)) continue;
    if (em_.LabelOf(q.row_a, q.row_b) >= 0) continue;
    std::optional<bool> confirm = user_.AnswerT(q);
    ++asked_t;
    if (!confirm.has_value()) continue;
    em_.AddLabel(q.row_a, q.row_b, *confirm);
    if (*confirm) ApplyConfirmedMatch(q.row_a, q.row_b);
  }

  // Same machine auto-merge as the composite path (same label gate).
  if (em_.num_labels() < kMinLabelsForAutoMerge) {
    trace.machine.apply += apply_watch.Seconds();
    trace.questions_asked = asked_t + asked_a + asked_m + asked_o;
    trace.user_seconds =
        cost_model_.SingleGroupSeconds(asked_t, asked_a, asked_m, asked_o);
    trace.emd = CurrentEmd();
    return trace;
  }
  ClusteringOptions cluster_options;
  cluster_options.auto_merge_threshold = options_.auto_merge_threshold;
  EntityClusters clusters =
      ClusterEntities(table_.num_rows(), scored_, em_, cluster_options);
  for (const std::vector<size_t>& cluster : clusters.MultiMemberClusters()) {
    std::vector<size_t> live;
    for (size_t r : cluster) {
      if (!table_.is_dead(r)) live.push_back(r);
    }
    // Machine merges consolidate locally only: even a rare wrong cluster
    // would poison the whole column if its spellings were standardized
    // table-wide. The witnessed variant pairs become A-questions, so the
    // user-verified path performs the actual standardization.
    if (live.size() >= 2) {
      RecordWitnessedSpellings(live);
      MergeRows(&table_, live);
    }
  }
  trace.machine.apply += apply_watch.Seconds();

  trace.questions_asked = asked_t + asked_a + asked_m + asked_o;
  trace.user_seconds =
      cost_model_.SingleGroupSeconds(asked_t, asked_a, asked_m, asked_o);
  trace.emd = CurrentEmd();
  return trace;
}

Result<std::vector<IterationTrace>> VisCleanSession::Run() {
  VC_RETURN_IF_ERROR(Initialize());
  std::vector<IterationTrace> traces;
  IterationTrace initial;
  initial.iteration = 0;
  initial.emd = CurrentEmd();
  traces.push_back(initial);
  for (size_t i = 0; i < options_.budget; ++i) {
    Result<IterationTrace> trace = RunIteration();
    if (!trace.ok()) return trace.status();
    traces.push_back(std::move(trace).value());
  }
  return traces;
}

Result<VisData> VisCleanSession::CurrentVis() const {
  return ExecuteVql(query_, table_);
}

Result<VisData> VisCleanSession::GroundTruthVis() const {
  return ExecuteVql(query_, oracle_->clean);
}

double VisCleanSession::CurrentEmd() const {
  Result<VisData> current = CurrentVis();
  Result<VisData> truth = GroundTruthVis();
  if (!current.ok() || !truth.ok()) return 0.0;
  return EmdDistance(current.value(), truth.value());
}

}  // namespace visclean
