#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/thread_pool.h"
#include "dist/emd.h"
#include "obs/trace.h"
#include "vql/executor.h"

namespace visclean {

namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Times one stage and charges its wall time to the declared bucket.
Status RunStageTimed(PipelineStage& stage, EngineContext& ctx) {
  obs::ScopedSpan span(stage.name());
  Stopwatch watch;
  VC_RETURN_IF_ERROR(stage.Run(ctx));
  double seconds = watch.Seconds();
  ctx.trace.stage_times.push_back({stage.name(), seconds});
#ifndef VISCLEAN_OBS_OFF
  if (ctx.registry != nullptr) {
    ctx.registry->GetHistogram(std::string("stage.") + stage.name() + ".ns")
        ->Record(static_cast<uint64_t>(seconds * 1e9));
  }
#endif
  switch (stage.bucket()) {
    case StageBucket::kDetect:
      ctx.trace.machine.detect += seconds;
      break;
    case StageBucket::kTrain:
      ctx.trace.machine.train += seconds;
      break;
    case StageBucket::kBenefit:
      ctx.trace.machine.benefit += seconds;
      break;
    case StageBucket::kSelect:
      ctx.trace.machine.select += seconds;
      break;
    case StageBucket::kApply:
      ctx.trace.machine.apply += seconds;
      break;
  }
  return Status::Ok();
}

// Snapshot of the caches' cumulative counters, diffed across one iteration:
// counters(resolve end) - counters(plan entry) = this iteration's activity.
IncrementalityCounters CountersOf(const EngineContext& ctx) {
  IncrementalityCounters c;
  c.detect_full_scans = ctx.detection.stats().full_scans;
  c.detect_delta_updates = ctx.detection.stats().delta_updates;
  c.erg_full_builds = ctx.erg_cache.stats().full_builds;
  c.erg_delta_updates = ctx.erg_cache.stats().delta_updates;
  c.sim_join_full = ctx.erg_cache.sim_join_stats().full_joins;
  c.sim_join_fallbacks = ctx.erg_cache.sim_join_stats().fallback_full_joins;
  c.sim_join_delta_syncs = ctx.erg_cache.sim_join_stats().delta_syncs;
  return c;
}

}  // namespace

VisCleanSession::VisCleanSession(const DirtyDataset* oracle, VqlQuery query,
                                 SessionOptions options,
                                 UserOptions user_options,
                                 UserCostModel cost_model)
    : oracle_(oracle),
      ctx_(oracle, std::move(query), options, user_options, cost_model) {}

VisCleanSession::~VisCleanSession() = default;

void VisCleanSession::SetExternalPool(ThreadPool* pool) {
  VC_CHECK(!initialized_, "SetExternalPool must precede Initialize()");
  external_pool_ = pool;
}

void VisCleanSession::SetExternalScheduler(KernelScheduler* scheduler) {
  VC_CHECK(!initialized_, "SetExternalScheduler must precede Initialize()");
  external_scheduler_ = scheduler;
}

void VisCleanSession::SetExternalRegistry(obs::Registry* registry) {
  VC_CHECK(!initialized_, "SetExternalRegistry must precede Initialize()");
  external_registry_ = registry;
}

Status VisCleanSession::Initialize() {
  if (initialized_) return Status::Ok();
  Result<std::unique_ptr<CqgSelector>> selector =
      MakeSelector(ctx_.options.selector, ctx_.options.seed);
  if (!selector.ok()) return selector.status();
  ctx_.selector = std::move(selector).value();
  if (external_pool_ != nullptr) {
    ctx_.pool = external_pool_;
  } else if (ctx_.options.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(ctx_.options.threads);
    ctx_.pool = pool_.get();
  }
  ctx_.kernels = external_scheduler_;
  ctx_.registry = external_registry_;
  if (external_registry_ != nullptr) {
    for (size_t k = 0; k < kNumKernelKinds; ++k) {
      const char* kind = KernelKindName(static_cast<KernelKind>(k));
      ctx_.kernel_metrics[k].calls = external_registry_->GetCounter(
          std::string("kernel.") + kind + ".calls");
      ctx_.kernel_metrics[k].rows = external_registry_->GetCounter(
          std::string("kernel.") + kind + ".rows");
    }
  }
  // Validate the query against the table once up front.
  Result<VisData> vis = ExecuteVql(ctx_.query, ctx_.table);
  if (!vis.ok()) return vis.status();
  stages_ = MakeStages(ctx_.options.strategy);
  initialized_ = true;
  return Status::Ok();
}

Result<PendingInteraction> VisCleanSession::PlanIteration() {
  if (!initialized_) {
    return Status::Internal("call Initialize() before PlanIteration()");
  }
  if (pending_) {
    return Status::Internal("previous iteration still awaits its answer");
  }

  // Checkpoint the durable state the plan phase consumes, so a snapshot
  // taken while the question is out can replay this exact plan on restore.
  plan_retrain_counter_ = ctx_.retrain_counter;
  plan_selector_state_ = ctx_.selector->SaveState();
  plan_forest_trees_ = ctx_.em.forest().ExportTrees();
  counter_base_ = CountersOf(ctx_);

  // New iteration epoch: every arena span handed out during the previous
  // plan is now invalid (and poisoned under ASan). All arena use is
  // confined to the plan phase, so resetting here is the whole lifecycle.
  ctx_.arena.Reset();

  ctx_.trace = IterationTrace();
  ctx_.trace.iteration = ++iteration_;

  for (const std::unique_ptr<PipelineStage>& stage : stages_) {
    if (stage->phase() != StagePhase::kPlan) continue;
    VC_RETURN_IF_ERROR(RunStageTimed(*stage, ctx_));
  }
  pending_ = true;

  PendingInteraction out;
  out.iteration = iteration_;
  out.strategy = ctx_.options.strategy;
  if (ctx_.options.strategy == QuestionStrategy::kComposite) {
    out.cqg_benefit = ctx_.cqg.total_benefit;
    out.cqg_vertices = ctx_.cqg.vertices.size();
    out.cqg_edges = ctx_.cqg.edge_indices.size();
  }
  out.pool_questions =
      ctx_.questions.t_questions.size() + ctx_.questions.a_questions.size() +
      ctx_.questions.m_questions.size() + ctx_.questions.o_questions.size();
  return out;
}

Result<IterationTrace> VisCleanSession::ResolveIteration() {
  if (!pending_) {
    return Status::Internal("ResolveIteration without a pending plan");
  }

  for (const std::unique_ptr<PipelineStage>& stage : stages_) {
    if (stage->phase() != StagePhase::kResolve) continue;
    VC_RETURN_IF_ERROR(RunStageTimed(*stage, ctx_));
  }

  ctx_.trace.emd = CurrentEmd();

  // Per-iteration incrementality counters: everything the caches did since
  // this round's plan entry (all zero on the kFull reference paths).
  {
    IncrementalityCounters now = CountersOf(ctx_);
    IncrementalityCounters& d = ctx_.trace.incremental;
    d.detect_full_scans = now.detect_full_scans - counter_base_.detect_full_scans;
    d.detect_delta_updates =
        now.detect_delta_updates - counter_base_.detect_delta_updates;
    d.erg_full_builds = now.erg_full_builds - counter_base_.erg_full_builds;
    d.erg_delta_updates = now.erg_delta_updates - counter_base_.erg_delta_updates;
    d.sim_join_full = now.sim_join_full - counter_base_.sim_join_full;
    d.sim_join_fallbacks =
        now.sim_join_fallbacks - counter_base_.sim_join_fallbacks;
    d.sim_join_delta_syncs =
        now.sim_join_delta_syncs - counter_base_.sim_join_delta_syncs;
  }

  // Journal compaction for all incremental consumers: each holds its own
  // watermark, so the journal may only be trimmed up to the minimum —
  // anything later is still unread by at least one cache. Four consumers
  // read the journal: the benefit engine, the detection cache, the ERG
  // cache's value index / working graph, and the maintained sim join. The
  // join is synced strictly after the index and shares its watermark, so
  // its fold is subsumed by the erg_cache fold whenever both are primed —
  // it is folded explicitly anyway to keep the contract visible and safe
  // against future reordering.
  uint64_t upto = 0;
  bool have_consumer = false;
  auto fold = [&](bool primed, uint64_t watermark) {
    if (!primed) return;
    upto = have_consumer ? std::min(upto, watermark) : watermark;
    have_consumer = true;
  };
  fold(ctx_.benefit_engine.primed(), ctx_.benefit_engine.watermark());
  fold(ctx_.detection.primed(), ctx_.detection.watermark());
  fold(ctx_.erg_cache.primed(), ctx_.erg_cache.watermark());
  fold(ctx_.erg_cache.join_primed(), ctx_.erg_cache.watermark());
  if (have_consumer) ctx_.table.CompactJournal(upto);

  pending_ = false;
  return ctx_.trace;
}

Result<IterationTrace> VisCleanSession::RunIteration() {
  Result<PendingInteraction> planned = PlanIteration();
  if (!planned.ok()) return planned.status();
  return ResolveIteration();
}

Result<std::vector<IterationTrace>> VisCleanSession::Run() {
  VC_RETURN_IF_ERROR(Initialize());
  std::vector<IterationTrace> traces;
  IterationTrace initial;
  initial.iteration = 0;
  initial.emd = CurrentEmd();
  traces.push_back(initial);
  for (size_t i = 0; i < ctx_.options.budget; ++i) {
    Result<IterationTrace> trace = RunIteration();
    if (!trace.ok()) return trace.status();
    traces.push_back(std::move(trace).value());
  }
  return traces;
}

Result<SessionSnapshotState> VisCleanSession::CaptureState() const {
  if (!initialized_) {
    return Status::Internal("call Initialize() before CaptureState()");
  }
  SessionSnapshotState state;
  state.dataset_name = oracle_->name;
  state.query_text = ctx_.query.ToString();
  state.options = ctx_.options;
  state.user_options = ctx_.user.options();
  state.cost_model = ctx_.cost_model;

  state.pending = pending_;
  if (pending_) {
    // A planned-but-unanswered round is not durable: persist the plan-entry
    // checkpoint and let RestoreState replay the plan deterministically.
    state.completed_iterations = iteration_ - 1;
    state.retrain_counter = plan_retrain_counter_;
    state.selector_state = plan_selector_state_;
    state.forest_trees = plan_forest_trees_;
  } else {
    state.completed_iterations = iteration_;
    state.retrain_counter = ctx_.retrain_counter;
    state.selector_state = ctx_.selector->SaveState();
    state.forest_trees = ctx_.em.forest().ExportTrees();
  }

  // Clone() hands back the rows with a compacted journal at the current
  // watermark — exactly the durable image (plan stages are table-neutral,
  // so a pending capture sees the pre-plan table).
  state.table = ctx_.table.Clone();
  state.em_labels = ctx_.em.labels();
  state.question_store = ctx_.question_store.Snapshot();
  state.a_answered = ctx_.a_answered;
  state.o_answered = ctx_.o_answered;
  state.merge_witnessed_a = ctx_.merge_witnessed_a;
  state.transform_votes = ctx_.transform_votes;
  state.user_rng_state = ctx_.user.SaveRngState();
  return state;
}

Status VisCleanSession::RestoreState(const SessionSnapshotState& state) {
  VC_RETURN_IF_ERROR(Initialize());
  if (iteration_ != 0 || pending_) {
    return Status::InvalidArgument(
        "RestoreState requires a freshly initialized session");
  }
  if (oracle_->name != state.dataset_name) {
    return Status::InvalidArgument("snapshot dataset '" + state.dataset_name +
                                   "' does not match session dataset '" +
                                   oracle_->name + "'");
  }

  ctx_.table = state.table;
  ctx_.em.RestoreLabels(state.em_labels);
  // The forest must come back verbatim: a later degenerate retrain (empty
  // or single-class training set) keeps the previous fit, so the fit
  // itself is durable state — labels alone cannot reproduce it.
  ctx_.em.RestoreForest(state.forest_trees);
  ctx_.question_store.Restore(state.question_store);
  ctx_.a_answered = state.a_answered;
  ctx_.o_answered = state.o_answered;
  ctx_.merge_witnessed_a = state.merge_witnessed_a;
  ctx_.transform_votes = state.transform_votes;
  ctx_.retrain_counter = state.retrain_counter;
  if (!ctx_.user.LoadRngState(state.user_rng_state)) {
    return Status::InvalidArgument("snapshot user RNG state does not parse");
  }
  if (!state.selector_state.empty() &&
      !ctx_.selector->LoadState(state.selector_state)) {
    return Status::InvalidArgument("snapshot selector state does not parse");
  }
  iteration_ = state.completed_iterations;

  // The caches (benefit engine, detection, ERG) start unprimed and rebuild
  // bit-identically on first touch. A pending snapshot resumes by replaying
  // the plan phase from the just-restored checkpoint: same inputs, same
  // stages, same pending question.
  if (state.pending) {
    Result<PendingInteraction> replay = PlanIteration();
    if (!replay.ok()) return replay.status();
  }
  return Status::Ok();
}

Result<VisData> VisCleanSession::CurrentVis() const {
  return ExecuteVql(ctx_.query, ctx_.table);
}

Result<VisData> VisCleanSession::GroundTruthVis() const {
  return ExecuteVql(ctx_.query, oracle_->clean);
}

double VisCleanSession::CurrentEmd() const {
  Result<VisData> current = CurrentVis();
  Result<VisData> truth = GroundTruthVis();
  if (!current.ok() || !truth.ok()) return 0.0;
  return EmdDistance(current.value(), truth.value());
}

}  // namespace visclean
