// EngineContext: the shared blackboard the pipeline stages read and write.
//
// One iteration of the Fig. 6 loop is a pass over the stage list
// (src/core/pipeline.h); every stage receives the same EngineContext, which
// owns the working table, the EM model, the ERG/CQG of the current
// iteration, the cross-iteration answer memory, and the per-stage timing of
// the iteration in flight. VisCleanSession is only a thin driver around it.
#ifndef VISCLEAN_CORE_ENGINE_CONTEXT_H_
#define VISCLEAN_CORE_ENGINE_CONTEXT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clean/question.h"
#include "clean/question_store.h"
#include "common/arena.h"
#include "common/kernel_scheduler.h"
#include "core/benefit_model.h"
#include "core/detection_cache.h"
#include "core/erg_cache.h"
#include "data/table.h"
#include "datagen/generator.h"
#include "em/em_model.h"
#include "graph/cqg.h"
#include "graph/erg.h"
#include "graph/selector.h"
#include "user/cost_model.h"
#include "user/simulated_user.h"
#include "vql/ast.h"

namespace visclean {

class ThreadPool;

/// \brief Questioning strategy: composite (CQG) or isolated singles.
enum class QuestionStrategy { kComposite, kSingle };

/// \brief Session configuration.
struct SessionOptions {
  size_t k = 10;                 ///< CQG size (paper default)
  size_t budget = 15;            ///< iterations (paper default)
  std::string selector = "gss";  ///< see MakeSelector / SelectorRegistry
  QuestionStrategy strategy = QuestionStrategy::kComposite;
  /// #single questions per iteration in kSingle mode (the paper's m,
  /// matched to the #edges of a typical CQG).
  size_t single_m = 10;

  /// Worker threads for benefit estimation (BenefitStage). 1 preserves
  /// today's exact serial behaviour; N > 1 evaluates speculative repairs on
  /// a session-owned ThreadPool with bit-identical results.
  size_t threads = 1;

  /// How BenefitStage renders speculative repairs. kAuto (default) keeps a
  /// provenance-indexed baseline across iterations and re-aggregates only
  /// the groups each candidate repair touches; kFull re-renders Q(D) from
  /// scratch per candidate (the reference the differential suite compares
  /// against). Benefits are bit-identical either way.
  BenefitMode benefit_mode = BenefitMode::kAuto;

  /// How DetectStage runs. kAuto (default) drives detection through the
  /// session's DetectionCache: journal-driven per-row deltas after the first
  /// iteration, pooled full scans otherwise, with the pair-feature memo
  /// lent to TrainStage. kFull is the legacy serial, uncached path
  /// the differential suite compares against. Outputs are bit-identical.
  DetectionMode detection_mode = DetectionMode::kAuto;
  /// Dirty fraction above which kAuto abandons the delta update for a full
  /// scan (see DetectionRequest::dirty_fallback_threshold).
  double detection_dirty_threshold = 0.35;

  /// How the assemble stage builds the ERG. kAuto (default) maintains the
  /// graph across iterations through the session's ErgCache (QuestionStore
  /// deltas + journal-driven X value index); kFull assembles from scratch
  /// every iteration (the reference the differential suite compares
  /// against). The published graph is bit-identical either way.
  ErgMode erg_mode = ErgMode::kAuto;
  /// Dirty fraction above which the ErgCache rebuilds its X value index and
  /// working graph from scratch (see ErgRequest::dirty_fallback_threshold).
  double erg_dirty_threshold = 0.35;

  uint64_t seed = 7;
  double auto_merge_threshold = 0.95;  ///< EM prob for machine auto-merge
  double sim_join_lambda = 0.5;        ///< λ of Algorithm 1
  size_t max_t_questions = 200;        ///< |Q_T| cap per iteration
  size_t max_m_questions = 150;        ///< |Q_M| cap per iteration
  size_t blocking_max_block = 16;      ///< token-blocking block-size cap
  size_t max_seed_examples = 4000;     ///< weak-supervision training cap
  ForestOptions forest;                ///< EM model hyperparameters
};

/// \brief Per-component machine seconds of one iteration (Fig. 18). The
/// five buckets aggregate the finer-grained per-stage timings (see
/// IterationTrace::stage_times); stages declare which bucket they charge.
struct ComponentTimes {
  double detect = 0;   ///< detect errors / generate repairs (incl. kNN)
  double train = 0;    ///< train (fine-tune) the EM model
  double benefit = 0;  ///< estimate benefit over the ERG
  double select = 0;   ///< CQG selection
  double apply = 0;    ///< repair errors + refresh visualization

  double Total() const { return detect + train + benefit + select + apply; }
};

/// \brief Wall time of one pipeline stage within one iteration.
struct StageTime {
  std::string stage;     ///< PipelineStage::name()
  double seconds = 0.0;  ///< wall time of this stage's Run()
};

/// \brief Per-iteration deltas of the incremental-maintenance counters: how
/// each cache serviced this iteration (delta applied vs. full rebuild vs.
/// dirty-fraction fallback). All zero on the kFull reference paths; a stage
/// silently regressing to full rebuilds shows up here in exported traces
/// instead of only in benches.
struct IncrementalityCounters {
  size_t detect_full_scans = 0;      ///< DetectionCache full scans
  size_t detect_delta_updates = 0;   ///< DetectionCache journal deltas
  size_t erg_full_builds = 0;        ///< ErgCache working-graph full builds
  size_t erg_delta_updates = 0;      ///< ErgCache incremental updates
  size_t sim_join_full = 0;          ///< sim-join from-scratch rebuilds
  size_t sim_join_fallbacks = 0;     ///< ... of which dirty-fraction forced
  size_t sim_join_delta_syncs = 0;   ///< sim-join insert/retract syncs
};

/// \brief Everything recorded about one iteration.
struct IterationTrace {
  size_t iteration = 0;        ///< 1-based
  double emd = 0.0;            ///< EMD(Q(D), Q(D_g)) after this iteration
  double user_seconds = 0.0;   ///< simulated human cost of this iteration
  size_t questions_asked = 0;  ///< edge + vertex questions (or singles)
  double cqg_benefit = 0.0;    ///< estimated benefit of the asked CQG
  ComponentTimes machine;      ///< machine time breakdown (Fig. 18 buckets)
  std::vector<StageTime> stage_times;  ///< per-stage wall time, in run order
  IncrementalityCounters incremental;  ///< cache behaviour this iteration
};

/// \brief Shared state of one cleaning run, threaded through the stages.
///
/// Ownership: the context owns everything below except `pool` (owned by the
/// session, optional) and the oracle behind `user` (caller-owned, must
/// outlive the run).
struct EngineContext {
  EngineContext(const DirtyDataset* oracle, VqlQuery query_in,
                SessionOptions options_in, UserOptions user_options,
                UserCostModel cost_model_in)
      : query(std::move(query_in)),
        options(options_in),
        cost_model(cost_model_in),
        table(oracle->dirty.Clone()),
        user(oracle, user_options),
        em(options_in.forest) {}

  // ---- Run-wide configuration ----
  VqlQuery query;
  SessionOptions options;
  UserCostModel cost_model;

  // ---- Long-lived engine state ----
  Table table;          ///< the progressively cleaned working copy
  SimulatedUser user;   ///< answers questions from the oracle
  EmModel em;           ///< entity-matching model, fine-tuned per iteration
  std::unique_ptr<CqgSelector> selector;  ///< set by the driver's Initialize
  ThreadPool* pool = nullptr;  ///< session-owned; null = serial benefits
  /// Cross-session kernel scheduler (serving layer's KernelBatcher); null
  /// for standalone sessions. When set, the chunkable kernels (EM
  /// inference, pair features, kNN) run through it instead of `pool`.
  KernelScheduler* kernels = nullptr;
  /// Per-iteration scratch arena: Reset() at every PlanIteration entry,
  /// so spans live exactly one plan phase (see common/arena.h). Holds the
  /// EM gather matrices, ERG traversal marks, and detector corpus tables.
  Arena arena;
  /// Telemetry sink (serving layer's per-manager registry; null standalone).
  /// Timings and counts flow out through it, nothing flows back in — an
  /// instrumented run is bit-identical to an uninstrumented one.
  obs::Registry* registry = nullptr;
  /// Per-kind kernel telemetry handles, resolved once when `registry` is
  /// attached (see VisCleanSession::SetExternalRegistry).
  KernelSiteMetrics kernel_metrics[kNumKernelKinds];

  /// The kernel execution environment stages hand to the batchable loops.
  KernelEnv kernel_env() {
    return KernelEnv{pool, kernels, &arena,
                     registry != nullptr ? kernel_metrics : nullptr};
  }
  /// Cross-iteration cache behind incremental benefit estimation: baseline
  /// Q(D) + tuple->group provenance, refreshed per iteration from the
  /// table's mutation journal (used only when benefit_mode == kAuto).
  BenefitEngine benefit_engine;
  /// Cross-iteration caches behind incremental detection: blocking state,
  /// row token sets, kNN neighbor lists, pair features (used only when
  /// detection_mode == kAuto).
  DetectionCache detection;
  /// Cross-iteration question identity: per-type pools keyed by question
  /// identity with stable ids, plus the per-iteration delta the ErgCache
  /// consumes (fed by AssembleStage in both erg modes).
  QuestionStore question_store;
  /// Cross-iteration ERG maintenance: journal-driven X value index, the
  /// maintained A-question self-join, the maintained working graph, and the
  /// per-iteration selection support (used only when erg_mode == kAuto).
  ErgCache erg_cache;

  // ---- Per-iteration products (refreshed by the stages) ----
  std::vector<std::pair<size_t, size_t>> candidates;  ///< blocking output
  std::vector<ScoredPair> scored;  ///< EM scores over `candidates`
  QuestionSet questions;           ///< detected T/A/M/O questions
  Erg erg;                         ///< published by AssembleStage
  Cqg cqg;                         ///< chosen by SelectStage
  IterationTrace trace;            ///< the iteration being assembled

  // ---- Cross-iteration memory ----
  uint64_t retrain_counter = 0;  ///< seeds deterministic retraining

  /// Already-answered questions must not be asked again: spelling pairs the
  /// user ruled on (A-questions; resolved pairs vanish on their own, this
  /// remembers rejections) and (row, column) outlier verdicts.
  std::set<std::pair<std::string, std::string>> a_answered;
  std::set<std::pair<size_t, size_t>> o_answered;

  /// Spelling pairs witnessed inside machine-merged clusters (Strategy 1
  /// evidence that physical merging would otherwise destroy): proposed as
  /// A-questions in later iterations until the user rules on them.
  std::vector<AQuestion> merge_witnessed_a;

  /// Corroboration ledger for table-wide standardization: variant spelling
  /// -> (target spelling, #user answers that asserted it). One answer only
  /// repairs the rows at hand; two agreeing answers rewrite the column —
  /// so a single wrong label (Exp-3) cannot poison a whole venue.
  std::map<std::string, std::pair<std::string, int>> transform_votes;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_ENGINE_CONTEXT_H_
