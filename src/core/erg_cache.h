// ErgCache: journal-driven incremental maintenance of the ERG across
// iterations, the graph-side half of the incremental select stage (the
// question-side half is clean/question_store.h; the contract shared by the
// two plus the session driver is documented in DESIGN.md §2.4).
//
// Legacy assembly rebuilt the ERG from the whole table every iteration:
// an O(table) scan to index X-column spellings (for A-question promotion
// and edge attribute payloads) plus an O(pools) graph construction. The
// cache splits that into
//  * an XValueIndex kept in sync via the Table mutation journal — the only
//    O(table) input — with a pooled full rebuild past a dirty-fraction
//    threshold, mirroring core/detection_cache.h;
//  * a maintained working Erg, updated by edge/vertex insert-retract from
//    the QuestionStore delta, with tombstoned slots and a compaction pass.
//
// Every iteration publishes `working.Compacted()` — the canonical dense
// snapshot (vertices by row, edges by row pair) — so selectors see a form
// that is independent of insertion/retraction history. AssembleFull builds
// the same canonical graph from scratch; ErgMode::kFull routes through it,
// and the two modes are bit-identical at any thread count.
#ifndef VISCLEAN_CORE_ERG_CACHE_H_
#define VISCLEAN_CORE_ERG_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clean/question_store.h"
#include "common/kernel_scheduler.h"
#include "graph/erg.h"
#include "graph/select_support.h"
#include "text/sim_join.h"

namespace visclean {

class Arena;
class Table;
class EmModel;
class PairFeatureCache;

/// \brief How the assemble stage maintains the ERG.
enum class ErgMode {
  kAuto,  ///< journal-driven incremental maintenance with full-build fallback
  kFull,  ///< stateless full assembly every iteration (the reference path)
};

/// \brief Structural inputs of one assembly. A change in the structural
/// fields (x_column, max_promoted_a) invalidates the cache entirely.
struct ErgRequest {
  static constexpr size_t kNoColumn = static_cast<size_t>(-1);

  size_t x_column = kNoColumn;  ///< categorical X column, or kNoColumn
  size_t max_promoted_a = 0;    ///< cap on A-questions promoted to edges
  /// Mutated-row fraction (per journal fold) above which the value index
  /// is rebuilt from scratch and the working graph is rebuilt with it.
  double dirty_fallback_threshold = 0.35;
  /// Tombstoned edge-slot fraction above which the working graph is
  /// compacted in place.
  double compact_tombstone_fraction = 0.5;
};

/// \brief Observability counters; reset by Clear().
struct ErgStats {
  size_t full_builds = 0;           ///< working-graph full rebuilds (any cause)
  size_t fallback_full_builds = 0;  ///< ... of which forced by dirty fraction
  size_t delta_updates = 0;         ///< incremental BeginIteration calls
  size_t index_folds = 0;           ///< journal folds applied to the index
  size_t edges_inserted = 0;
  size_t edges_retracted = 0;
  size_t payload_refreshes = 0;  ///< edge payloads recomputed
  size_t slot_compactions = 0;   ///< in-place tombstone compactions
  size_t jaccard_memo_hits = 0;
  size_t jaccard_memo_misses = 0;
  size_t support_refreshes = 0;  ///< selection-support refreshes
  double last_dirty_fraction = 0.0;
  size_t last_dirty_rows = 0;
};

/// \brief Live index over the X column: spelling -> live rows carrying it,
/// plus a per-row shadow of the last-seen spelling so journal entries (row
/// ids only) can be folded without rescanning the table.
class XValueIndex {
 public:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  bool primed() const { return primed_; }
  void Clear();

  /// Rebuilds from the whole table. With a pool, rows are scanned in
  /// parallel chunks and merged in chunk order (deterministic).
  void FullRebuild(const Table& table, size_t x_column, ThreadPool* pool);

  /// Folds journal rows: for each row, replaces the shadowed spelling with
  /// the row's current one. Idempotent for a fixed table state, so mid-ask
  /// syncs are safe. When `touched` is given, every spelling whose row set
  /// changed (old shadow and/or new value) is added to it — the netting
  /// input for downstream consumers like the incremental sim join.
  void Fold(const Table& table, size_t x_column,
            const std::vector<size_t>& rows,
            std::set<std::string>* touched = nullptr);

  /// Number of live rows carrying `spelling`.
  size_t Count(const std::string& spelling) const;
  /// Minimum live row carrying `spelling`, or kNoRow ("first live row
  /// wins", matching the legacy ascending scan).
  size_t Representative(const std::string& spelling) const;
  /// The shadowed spelling of `row` (engaged iff live with non-null X).
  const std::optional<std::string>& SpellingOf(size_t row) const;

  size_t num_spellings() const { return rows_of_.size(); }
  const std::map<std::string, std::set<size_t>>& rows_of() const {
    return rows_of_;
  }

 private:
  bool primed_ = false;
  std::map<std::string, std::set<size_t>> rows_of_;
  std::vector<std::optional<std::string>> shadow_;  // by row id
};

/// \brief The maintained select-stage state of a session.
///
/// Lifecycle (mirrors DetectionCache):
///  * SyncValueIndex — bring the X index up to the table's journal head;
///    called by the assemble stage and by generate/ask-stage readers that
///    used to scan the table.
///  * BeginIteration — apply the QuestionStore delta to the working graph
///    and publish the canonical snapshot into `out`.
///  * ResyncRolledBack — after speculative benefit repairs are rolled back
///    bit-for-bit, fast-forward the watermark past their journal noise.
///  * watermark()/primed() — the session driver folds this watermark into
///    its journal-compaction bound alongside the benefit engine's and the
///    detection cache's.
class ErgCache {
 public:
  /// Syncs the X value index to the table head (journal fold, or pooled
  /// full rebuild past the dirty threshold — which also schedules a full
  /// graph rebuild). Returns the synced index. Advances watermark().
  const XValueIndex& SyncValueIndex(const Table& table,
                                    const ErgRequest& request,
                                    ThreadPool* pool);

  /// Brings the maintained A-question self-join up to the table head:
  /// syncs the value index first, then nets the spellings its folds touched
  /// into insert/retract lists against the join's current item set. A
  /// spelling-level dirty fraction above request.dirty_fallback_threshold —
  /// or an index full rebuild, an options change, or an unprimed join —
  /// falls back to the pooled from-scratch self-join. Requires a real
  /// x_column. The returned join's items() are exactly the index's live
  /// spellings and its Pairs() are bit-identical to SimilaritySelfJoin over
  /// them.
  const IncrementalSimJoin& SyncSimJoin(const Table& table,
                                        const ErgRequest& request,
                                        const SimJoinOptions& join_options,
                                        ThreadPool* pool);

  /// Refreshes the maintained selection support against the published
  /// snapshot of this iteration (call after benefit annotation, before
  /// Select). The support handed to selectors via ErgView must have been
  /// refreshed on the exact graph they are selecting over. With `arena`
  /// set, the support's traversal marks live on it for this iteration.
  const ErgSelectSupport* RefreshSelectSupport(const Erg& published,
                                               Arena* arena = nullptr);

  /// Brings the working graph to the current pools and publishes the
  /// canonical snapshot into `*out`. `store.last_delta()` must describe
  /// the Ingest that produced the current pools. `features` (optional)
  /// memoizes pair-feature extraction for promoted-A edge probabilities —
  /// pass the DetectionCache's journal-invalidated cache when detection
  /// runs in kAuto mode; the payloads are bit-identical either way. `env`
  /// routes the batched EM inference behind the promoted-A payloads (and
  /// the pooled index rebuilds) through the pool / cross-session scheduler.
  void BeginIteration(const Table& table, const QuestionStore& store,
                      const EmModel& em, const ErgRequest& request,
                      PairFeatureCache* features, const KernelEnv& env,
                      Erg* out);

  /// Pool-only convenience overload (tests, standalone callers).
  void BeginIteration(const Table& table, const QuestionStore& store,
                      const EmModel& em, const ErgRequest& request,
                      PairFeatureCache* features, ThreadPool* pool, Erg* out) {
    BeginIteration(table, store, em, request, features,
                   KernelEnv{pool, nullptr, nullptr}, out);
  }

  /// Stateless reference assembly (ErgMode::kFull): fresh serial index,
  /// from-scratch build, canonical snapshot into `*out`.
  static void AssembleFull(const Table& table, const QuestionStore& store,
                           const EmModel& em, const ErgRequest& request,
                           Erg* out);

  /// The table has been restored bit-for-bit to its pre-speculation state;
  /// skip the rolled-back journal span instead of folding it.
  void ResyncRolledBack(const Table& table);

  void Clear();

  /// True when the cache holds journal-dependent state (a primed value
  /// index and/or a maintained working graph), i.e. when the session driver
  /// must respect watermark() when compacting the journal.
  bool primed() const { return primed_ || index_.primed(); }
  uint64_t watermark() const { return watermark_; }
  const ErgStats& stats() const { return stats_; }
  /// The maintained (possibly tombstoned) graph — tests only.
  const Erg& working_graph() const { return work_; }
  const XValueIndex& value_index() const { return index_; }
  /// True when the maintained sim join holds journal-dependent state. The
  /// join is synced strictly after the value index, so join_primed()
  /// implies primed() and the join rides this cache's watermark() in the
  /// session's compaction fold.
  bool join_primed() const { return sim_join_.primed(); }
  const SimJoinStats& sim_join_stats() const { return sim_join_.stats(); }

 private:
  enum class EdgeSource { kTuple, kPromotedA };
  struct SourceInfo {
    EdgeSource source = EdgeSource::kTuple;
    AQuestionKey akey;  // valid when source == kPromotedA
  };
  using RowPair = std::pair<size_t, size_t>;  // min row first

  void EnsureConfig(const ErgRequest& request);
  void FullGraphBuild(const Table& table, const QuestionStore& store,
                      const EmModel& em, const ErgRequest& request,
                      PairFeatureCache* features, const KernelEnv& env);
  void DeltaUpdate(const Table& table, const QuestionStore& store,
                   const EmModel& em, const ErgRequest& request,
                   PairFeatureCache* features, const KernelEnv& env);
  size_t EnsureVertex(size_t row);
  void AddEdgeForPair(const RowPair& pair, SourceInfo info);
  void RetractEdgeForPair(const RowPair& pair);
  void SweepIsolatedVertices();

  bool primed_ = false;         // working graph is valid
  bool rebuild_graph_ = false;  // next BeginIteration must full-build
  std::string fingerprint_;
  uint64_t watermark_ = 0;
  ErgStats stats_;
  XValueIndex index_;
  Erg work_;
  std::map<RowPair, SourceInfo> edge_source_;
  std::map<AQuestionKey, RowPair> promoted_;
  std::map<std::pair<std::string, std::string>, double> jaccard_memo_;
  /// Rows folded into the index since the last graph update; DeltaUpdate
  /// refreshes the payloads of their incident edges (a row mutation can
  /// change its spelling or its pair features), then clears the set.
  std::set<size_t> pending_payload_rows_;
  /// The maintained A-question self-join over the index's live spellings.
  IncrementalSimJoin sim_join_;
  /// Spellings touched by index folds since the last SyncSimJoin; netted
  /// against the join's item set (a spelling that died and revived between
  /// syncs nets to no-op), then cleared.
  std::set<std::string> pending_join_spellings_;
  /// Set whenever the index is fully rebuilt (the fold trail the join
  /// depends on is gone); the next SyncSimJoin rebuilds the join too.
  bool join_rebuild_ = false;
  /// Per-iteration selection scaffolding (benefit orderings, induction
  /// scratch) shared by every selector call on the published snapshot.
  ErgSelectSupport select_support_;
};

}  // namespace visclean

#endif  // VISCLEAN_CORE_ERG_CACHE_H_
