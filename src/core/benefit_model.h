// The estimation-based benefit model of Section V-A (Definition 5.1,
// Eqs. 5-6): for every ERG edge, speculatively apply each possible user
// operation to the dataset, re-render the visualization, and measure how far
// it moves (EMD). Larger movement = larger expected benefit.
#ifndef VISCLEAN_CORE_BENEFIT_MODEL_H_
#define VISCLEAN_CORE_BENEFIT_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/table.h"
#include "dist/vis_data.h"
#include "graph/erg.h"
#include "vql/ast.h"
#include "vql/executor.h"

namespace visclean {

class ThreadPool;

/// \brief How EstimateBenefits renders speculative repairs.
enum class BenefitMode {
  /// Use the engine's cached baseline + provenance when available: each
  /// candidate re-aggregates only the groups its repair touched. Falls back
  /// to full renders per candidate when the query has no group structure.
  kAuto,
  /// Always re-render Q(D) from every live row — the reference path the
  /// differential suite compares the incremental path against bit-for-bit.
  kFull,
};

/// \brief Cross-iteration cache behind the incremental benefit path: the
/// baseline visualization Q(D) plus its tuple->group provenance index.
///
/// Lifecycle: the benefit stage calls Prepare() once per iteration before
/// EstimateBenefits. The first call (or a query change) pays one full indexed
/// render; every later call reads the table's mutation journal and folds
/// exactly the rows that accepted repairs touched into the cache via
/// CommitVqlDelta — the cache is never rebuilt from scratch while the query
/// is stable. During estimation the cache is immutable: speculative repairs
/// render through ExecuteVqlDelta against it and roll back.
class BenefitEngine {
 public:
  /// Brings the cached baseline up to date with (query, *table). Reads the
  /// table's mutation journal and advances this engine's watermark; the
  /// table is not modified. Compaction is left to the session driver, which
  /// trims to the minimum watermark across all journal consumers.
  void Prepare(const VqlQuery& query, Table* table);

  /// Fast-forwards the journal watermark without touching the cache. Valid
  /// ONLY when the table is bit-for-bit back in its last-Prepare()d state —
  /// i.e. right after EstimateBenefits, whose speculative repairs all rolled
  /// back. The serial path repairs in place, so its journal entries would
  /// otherwise read as (no-op) invalidations next iteration.
  void ResyncRolledBack(Table* table);

  /// Drops the cache; the next Prepare pays a full rebuild.
  void Invalidate();

  /// True when the provenance index is valid for the prepared query (GROUP/
  /// BIN structure present) so candidates can render incrementally.
  bool incremental_ready() const { return prov_.supported; }

  /// The cached render of Q(D) as of the last Prepare. Bit-identical to
  /// ExecuteVql on the current table.
  const VisData& baseline() const { return baseline_; }
  const VisProvenance& provenance() const { return prov_; }

  // Diagnostics for the scaling bench.
  size_t full_rebuilds() const { return full_rebuilds_; }
  size_t delta_commits() const { return delta_commits_; }

  /// True once Prepare has run; the watermark is only meaningful then.
  bool primed() const { return primed_; }
  /// Journal position this engine has consumed up to (for the session's
  /// min-watermark compaction).
  uint64_t watermark() const { return watermark_; }

 private:
  void RebuildFull(const VqlQuery& query, Table* table);

  bool primed_ = false;
  std::string query_fingerprint_;  ///< VqlQuery::ToString of the cached query
  uint64_t watermark_ = 0;         ///< table mutation_count at last refresh
  VisData baseline_;
  VisProvenance prov_;
  DeltaScratch scratch_;
  size_t full_rebuilds_ = 0;
  size_t delta_commits_ = 0;
};

/// \brief Per-call counters (all modes; filled when `stats` is set).
struct BenefitStats {
  size_t renders = 0;      ///< total speculative evaluations (+1 baseline)
  size_t delta_evals = 0;  ///< evaluations served by ExecuteVqlDelta
  size_t full_evals = 0;   ///< evaluations served by a full render
};

/// \brief Options for benefit estimation.
struct BenefitOptions {
  /// Column index of the visualization's X axis in the table (kNoColumn
  /// when X is not categorical — then edges carry no A-question).
  static constexpr size_t kNoColumn = static_cast<size_t>(-1);
  size_t x_column = kNoColumn;

  /// Worker threads for the speculative repairs. 1 = the exact serial path
  /// (repair/rollback in place on `table`); N > 1 evaluates vertices and
  /// edges on per-thread table shadows with a deterministic reduction, so
  /// the computed benefits are bit-identical to the serial path.
  size_t threads = 1;
  /// Optional externally owned pool (e.g. the session's); when set it takes
  /// precedence over `threads` and is reused instead of spawning workers
  /// per call.
  ThreadPool* pool = nullptr;

  /// Optional prepared cache (see BenefitEngine). Null = legacy behaviour:
  /// every candidate re-renders from scratch. The engine must have been
  /// Prepare()d against exactly this (query, table) state.
  BenefitEngine* engine = nullptr;
  /// Ignored when `engine` is null. kFull forces the reference path even
  /// with an engine attached.
  BenefitMode mode = BenefitMode::kAuto;

  /// Optional out-param for per-call counters.
  BenefitStats* stats = nullptr;
};

/// \brief Fills in `benefit` for every edge of `erg` against the current
/// `table` and `query`.
///
/// Per edge (u, v) with rows a, b:
///  * B_T = p_tuple * dist(V, V') where V' renders after speculatively
///    merging a and b and standardizing their X spellings (the paper's
///    "twofold" confirm benefit). The split branch only improves the EM
///    model, not the current visualization, so its immediate dist is 0 —
///    a deliberate simplification of Eq. 6 (the paper retrains the model to
///    price the split branch; we price only the visible movement).
///  * B_A = p_attr * dist(V, V') where V' renders after the edge's
///    attribute standardization alone (rejection contributes nothing).
///  * B_M / B_O of the endpoint vertices render after the suggested
///    imputation/repair (Section V-A items 3-4); vertex benefits are
///    computed once and added to every incident edge, exactly as Example 5
///    composes b_12 = B_T + B_A + B_O.
///
/// All speculative repairs roll back through an UndoLog; `table` is
/// unchanged on return (worker threads never touch it — each repairs its
/// own clone). Returns the number of visualization evaluations performed
/// (diagnostics for the Fig. 18 bench); the count is independent of the
/// thread count and of the incremental mode — only the cost per evaluation
/// changes. The computed benefits are bit-identical across all (threads,
/// mode, engine) combinations.
size_t EstimateBenefits(const VqlQuery& query, Table* table, Erg* erg,
                        const BenefitOptions& options = {});

}  // namespace visclean

#endif  // VISCLEAN_CORE_BENEFIT_MODEL_H_
