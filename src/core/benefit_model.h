// The estimation-based benefit model of Section V-A (Definition 5.1,
// Eqs. 5-6): for every ERG edge, speculatively apply each possible user
// operation to the dataset, re-render the visualization, and measure how far
// it moves (EMD). Larger movement = larger expected benefit.
#ifndef VISCLEAN_CORE_BENEFIT_MODEL_H_
#define VISCLEAN_CORE_BENEFIT_MODEL_H_

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "dist/vis_data.h"
#include "graph/erg.h"
#include "vql/ast.h"

namespace visclean {

class ThreadPool;

/// \brief Options for benefit estimation.
struct BenefitOptions {
  /// Column index of the visualization's X axis in the table (kNoColumn
  /// when X is not categorical — then edges carry no A-question).
  static constexpr size_t kNoColumn = static_cast<size_t>(-1);
  size_t x_column = kNoColumn;

  /// Worker threads for the speculative repairs. 1 = the exact serial path
  /// (repair/rollback in place on `table`); N > 1 evaluates vertices and
  /// edges on per-thread table shadows with a deterministic reduction, so
  /// the computed benefits are bit-identical to the serial path.
  size_t threads = 1;
  /// Optional externally owned pool (e.g. the session's); when set it takes
  /// precedence over `threads` and is reused instead of spawning workers
  /// per call.
  ThreadPool* pool = nullptr;
};

/// \brief Fills in `benefit` for every edge of `erg` against the current
/// `table` and `query`.
///
/// Per edge (u, v) with rows a, b:
///  * B_T = p_tuple * dist(V, V') where V' renders after speculatively
///    merging a and b and standardizing their X spellings (the paper's
///    "twofold" confirm benefit). The split branch only improves the EM
///    model, not the current visualization, so its immediate dist is 0 —
///    a deliberate simplification of Eq. 6 (the paper retrains the model to
///    price the split branch; we price only the visible movement).
///  * B_A = p_attr * dist(V, V') where V' renders after the edge's
///    attribute standardization alone (rejection contributes nothing).
///  * B_M / B_O of the endpoint vertices render after the suggested
///    imputation/repair (Section V-A items 3-4); vertex benefits are
///    computed once and added to every incident edge, exactly as Example 5
///    composes b_12 = B_T + B_A + B_O.
///
/// All speculative repairs roll back through an UndoLog; `table` is
/// unchanged on return (worker threads never touch it — each repairs its
/// own clone). Returns the number of visualization renders performed
/// (diagnostics for the Fig. 18 bench); the count is independent of the
/// thread count.
size_t EstimateBenefits(const VqlQuery& query, Table* table, Erg* erg,
                        const BenefitOptions& options = {});

}  // namespace visclean

#endif  // VISCLEAN_CORE_BENEFIT_MODEL_H_
