// Span-based request tracing: every served request gets a trace id, the
// layers it crosses open nested spans (monotonic-clock timed), completed
// spans land in a bounded ring buffer, and requests slower than a
// configurable threshold are captured whole — span tree included — for
// later retrieval over the wire (kTraces / TRACES).
//
// Propagation. The active trace travels in a thread_local TraceContext:
// the server worker installs a RequestTrace around WireHandler::Handle,
// every ScopedSpan below it on that thread parents itself automatically,
// and shard::ForwardEnvelope stamps the context into the v3 kForwarded
// envelope so the shard-side worker joins the *router's* trace. Because the
// in-tree fleet runs shards and router in one process, one Tracer sees both
// tiers and a single captured trace covers wire decode → route → shard
// execute (per-stage children) → reply. The scope that *originated* a trace
// (trace id was not propagated to it) owns completion and slow capture.
//
// Cost. A span on a thread with no active trace is two thread_local reads —
// no clock, no allocation, no lock. Active spans take one steady_clock read
// at each end and one short mutex hold to push the completed record; spans
// are per-request/per-stage (tens per request), never per-row. Compiling
// with -DVISCLEAN_OBS_OFF makes ScopedSpan/RequestTrace empty types.
//
// Determinism. Spans observe timing; nothing reads them back into the
// engine, so instrumented runs stay bit-identical to uninstrumented ones
// (the differential suites run with tracing compiled in).
#ifndef VISCLEAN_OBS_TRACE_H_
#define VISCLEAN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace visclean {
namespace obs {

/// Nanoseconds on the process-wide monotonic clock (std::chrono::steady).
uint64_t MonotonicNs();

/// \brief One completed span.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root of its trace
  uint64_t start_ns = 0;   ///< MonotonicNs()
  uint64_t end_ns = 0;
  std::string name;
};

/// \brief A slow request captured whole: the root span's duration plus
/// every span of the trace present in the ring at completion time.
struct CapturedTrace {
  uint64_t trace_id = 0;
  uint64_t duration_ns = 0;
  std::string root_name;
  std::vector<SpanRecord> spans;  ///< unordered; see AssembleTraceTree
};

struct TracerOptions {
  /// Completed spans kept (ring, oldest overwritten). Sized for the spans
  /// of a few hundred in-flight requests.
  size_t ring_spans = 4096;
  /// Captured slow traces kept (ring, oldest dropped).
  size_t max_captured = 16;
  /// Root spans at least this long are captured with their span tree.
  /// 0 captures every request; the default only keeps genuinely slow ones.
  uint64_t slow_threshold_ns = 100'000'000;  // 100 ms
};

/// \brief Bounded span ring + slow-trace capture. Thread-safe.
class Tracer {
 public:
  using Options = TracerOptions;

  explicit Tracer(Options options = Options());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer. One instance on purpose: a trace's spans are
  /// recorded from every tier the request crosses in this process.
  static Tracer& Default();

  uint64_t NewId();  ///< fresh nonzero trace/span id

  /// Appends a completed span to the ring.
  void Record(const SpanRecord& span);

  /// Completes a trace at its originator: records `root` and, when its
  /// duration meets the slow threshold, captures the trace's spans.
  void Complete(const SpanRecord& root);

  std::vector<CapturedTrace> Captured() const;

  void SetSlowThresholdNs(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Drops all ring spans and captured traces (tests, bench phases).
  void Clear();

 private:
  const size_t ring_spans_;
  const size_t max_captured_;
  std::atomic<uint64_t> slow_threshold_ns_;
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  ///< size() < ring_spans_: not yet wrapped
  size_t ring_next_ = 0;
  std::deque<CapturedTrace> captured_;
};

/// \brief The calling thread's active trace (0 = none). Installed by
/// RequestTrace, consumed by ScopedSpan and shard::ForwardEnvelope.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;   ///< innermost open span: parent for new spans
  Tracer* tracer = nullptr;
};

TraceContext& CurrentTrace();

#ifndef VISCLEAN_OBS_OFF

/// \brief RAII root scope for one request on the current thread.
///
/// With trace_id == 0 a fresh trace begins and this scope owns completion
/// (slow capture at destruction). A nonzero trace_id joins a propagated
/// trace — the span is recorded but completion stays with the originator.
class RequestTrace {
 public:
  RequestTrace(Tracer& tracer, std::string_view name, uint64_t trace_id = 0,
               uint64_t parent_span = 0);
  ~RequestTrace();
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  uint64_t trace_id() const { return root_.trace_id; }
  uint64_t span_id() const { return root_.span_id; }

  /// Attaches a child span with explicit timestamps — for work measured
  /// before this scope existed (frame decode on the IO thread, queue wait).
  void RecordChild(std::string_view name, uint64_t start_ns, uint64_t end_ns);

 private:
  Tracer& tracer_;
  bool owns_;
  SpanRecord root_;
  TraceContext saved_;
};

/// \brief RAII child span under the thread's active trace. Free when no
/// trace is active.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    TraceContext& ctx = CurrentTrace();
    if (ctx.trace_id == 0 || ctx.tracer == nullptr) return;
    ctx_ = &ctx;
    rec_.trace_id = ctx.trace_id;
    rec_.span_id = ctx.tracer->NewId();
    rec_.parent_id = ctx.span_id;
    rec_.name.assign(name);
    saved_parent_ = ctx.span_id;
    ctx.span_id = rec_.span_id;
    rec_.start_ns = MonotonicNs();
  }
  ~ScopedSpan() {
    if (ctx_ == nullptr) return;
    rec_.end_ns = MonotonicNs();
    ctx_->span_id = saved_parent_;
    ctx_->tracer->Record(rec_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* ctx_ = nullptr;
  uint64_t saved_parent_ = 0;
  SpanRecord rec_;
};

/// Records an already-timed child span under the thread's active trace.
void RecordSpan(std::string_view name, uint64_t start_ns, uint64_t end_ns);

#else  // VISCLEAN_OBS_OFF: empty scopes, call sites unchanged

class RequestTrace {
 public:
  RequestTrace(Tracer&, std::string_view, uint64_t = 0, uint64_t = 0) {}
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
  void RecordChild(std::string_view, uint64_t, uint64_t) {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
};

inline void RecordSpan(std::string_view, uint64_t, uint64_t) {}

#endif  // VISCLEAN_OBS_OFF

}  // namespace obs
}  // namespace visclean

#endif  // VISCLEAN_OBS_TRACE_H_
