// Rendering the observability state for humans and scrapers: a
// Prometheus-style text exposition and a JSON document for metrics
// snapshots, plus JSON and indented-text renderings of captured traces.
// All pure functions over snapshot values — no registry or tracer access,
// so the same renderers serve local state and remotely fetched (kMetrics /
// kTraces) payloads.
#ifndef VISCLEAN_OBS_EXPORT_H_
#define VISCLEAN_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace visclean {
namespace obs {

/// Prometheus-style text exposition: counters and gauges as single samples,
/// histograms as cumulative `_bucket{le="..."}` series (non-empty buckets
/// only) plus `_count` / `_sum`. Metric names are prefixed `visclean_` with
/// dots mapped to underscores.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// JSON document: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, max, mean, p50, p95, p99}}}. Compact by default
/// (single line — the text dialect's METRICS response); `pretty` for files.
std::string ExportMetricsJson(const MetricsSnapshot& snapshot,
                              bool pretty = false);

/// \brief One node of an assembled span tree.
struct TraceTreeNode {
  SpanRecord span;
  std::vector<TraceTreeNode> children;  ///< ordered by start time
};

/// Assembles a captured trace's flat span list into its tree(s). Spans
/// whose parent is missing from the capture (evicted from the ring) surface
/// as additional roots rather than disappearing. Roots and children are
/// ordered by start time.
std::vector<TraceTreeNode> AssembleTraceTree(const CapturedTrace& trace);

/// JSON array of captured traces, each with its nested span tree — the
/// kTraces / TRACES wire payload.
std::string ExportTracesJson(const std::vector<CapturedTrace>& traces,
                             bool pretty = false);

/// Human-readable indented rendering of one captured trace:
///   request.step                          41.2ms
///     router.forward                      40.9ms
///       ...
std::string FormatTraceTree(const CapturedTrace& trace);

}  // namespace obs
}  // namespace visclean

#endif  // VISCLEAN_OBS_EXPORT_H_
