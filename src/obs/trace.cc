#include "obs/trace.h"

#include <chrono>

namespace visclean {
namespace obs {

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceContext& CurrentTrace() {
  thread_local TraceContext ctx;
  return ctx;
}

Tracer::Tracer(Options options)
    : ring_spans_(options.ring_spans == 0 ? 1 : options.ring_spans),
      max_captured_(options.max_captured),
      slow_threshold_ns_(options.slow_threshold_ns) {
  ring_.reserve(ring_spans_);
}

Tracer& Tracer::Default() {
  static Tracer* instance = new Tracer();  // leaked: outlives all users
  return *instance;
}

uint64_t Tracer::NewId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < ring_spans_) {
    ring_.push_back(span);
  } else {
    ring_[ring_next_] = span;
  }
  ring_next_ = (ring_next_ + 1) % ring_spans_;
}

void Tracer::Complete(const SpanRecord& root) {
  uint64_t duration =
      root.end_ns >= root.start_ns ? root.end_ns - root.start_ns : 0;
  std::lock_guard<std::mutex> lock(mu_);
  bool capture =
      duration >= slow_threshold_ns_.load(std::memory_order_relaxed) &&
      max_captured_ > 0;
  if (capture) {
    CapturedTrace trace;
    trace.trace_id = root.trace_id;
    trace.duration_ns = duration;
    trace.root_name = root.name;
    for (const SpanRecord& span : ring_) {
      if (span.trace_id == root.trace_id) trace.spans.push_back(span);
    }
    trace.spans.push_back(root);
    captured_.push_back(std::move(trace));
    while (captured_.size() > max_captured_) captured_.pop_front();
  }
  // The root joins the ring either way so a later, slower ancestor (none
  // today, but nested request scopes are legal) still sees it.
  if (ring_.size() < ring_spans_) {
    ring_.push_back(root);
  } else {
    ring_[ring_next_] = root;
  }
  ring_next_ = (ring_next_ + 1) % ring_spans_;
}

std::vector<CapturedTrace> Tracer::Captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CapturedTrace>(captured_.begin(), captured_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  captured_.clear();
}

#ifndef VISCLEAN_OBS_OFF

RequestTrace::RequestTrace(Tracer& tracer, std::string_view name,
                           uint64_t trace_id, uint64_t parent_span)
    : tracer_(tracer), owns_(trace_id == 0) {
  root_.trace_id = trace_id == 0 ? tracer.NewId() : trace_id;
  root_.span_id = tracer.NewId();
  root_.parent_id = parent_span;
  root_.name.assign(name);
  root_.start_ns = MonotonicNs();
  TraceContext& ctx = CurrentTrace();
  saved_ = ctx;
  ctx.trace_id = root_.trace_id;
  ctx.span_id = root_.span_id;
  ctx.tracer = &tracer;
}

RequestTrace::~RequestTrace() {
  root_.end_ns = MonotonicNs();
  CurrentTrace() = saved_;
  if (owns_) {
    tracer_.Complete(root_);
  } else {
    tracer_.Record(root_);
  }
}

void RequestTrace::RecordChild(std::string_view name, uint64_t start_ns,
                               uint64_t end_ns) {
  SpanRecord span;
  span.trace_id = root_.trace_id;
  span.span_id = tracer_.NewId();
  span.parent_id = root_.span_id;
  span.name.assign(name);
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  tracer_.Record(span);
}

void RecordSpan(std::string_view name, uint64_t start_ns, uint64_t end_ns) {
  TraceContext& ctx = CurrentTrace();
  if (ctx.trace_id == 0 || ctx.tracer == nullptr) return;
  SpanRecord span;
  span.trace_id = ctx.trace_id;
  span.span_id = ctx.tracer->NewId();
  span.parent_id = ctx.span_id;
  span.name.assign(name);
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  ctx.tracer->Record(span);
}

#endif  // VISCLEAN_OBS_OFF

}  // namespace obs
}  // namespace visclean
