#include "obs/metrics.h"

#include <utility>

#include "serve/codec.h"

namespace visclean {
namespace obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the order statistic at p, 1-based: ceil(p/100 * count), at
  // least 1 so p=0 reports the minimum bucket.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(count)) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketMidpoint(i);
  }
  return max;  // unreachable when bucket counts are consistent with count
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot& out = snap.histograms[name];
    for (const Histogram::Shard& shard : hist->shards_) {
      out.count += shard.count.load(std::memory_order_relaxed);
      out.sum += shard.sum.load(std::memory_order_relaxed);
      uint64_t m = shard.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  codec::Writer w;
  w.U64(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    w.Str(name);
    w.U64(value);
  }
  w.U64(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    w.Str(name);
    w.I64(value);
  }
  w.U64(snapshot.histograms.size());
  for (const auto& [name, hist] : snapshot.histograms) {
    w.Str(name);
    w.U64(hist.count);
    w.U64(hist.sum);
    w.U64(hist.max);
    uint64_t nonzero = 0;
    for (uint64_t b : hist.buckets) nonzero += (b != 0) ? 1 : 0;
    w.U64(nonzero);
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      w.U32(static_cast<uint32_t>(i));
      w.U64(hist.buckets[i]);
    }
  }
  return w.Take();
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(const std::string& bytes) {
  codec::Reader r(bytes);
  MetricsSnapshot snap;
  uint64_t num_counters = r.Count(16);  // length-prefixed name + u64 value
  for (uint64_t i = 0; i < num_counters && !r.failed(); ++i) {
    std::string name = r.Str();
    snap.counters[name] = r.U64();
  }
  uint64_t num_gauges = r.Count(16);
  for (uint64_t i = 0; i < num_gauges && !r.failed(); ++i) {
    std::string name = r.Str();
    snap.gauges[name] = r.I64();
  }
  uint64_t num_hists = r.Count(48);  // name + count/sum/max + bucket count
  for (uint64_t i = 0; i < num_hists && !r.failed(); ++i) {
    std::string name = r.Str();
    HistogramSnapshot& hist = snap.histograms[name];
    hist.count = r.U64();
    hist.sum = r.U64();
    hist.max = r.U64();
    uint64_t nonzero = r.Count(12);  // u32 index + u64 count
    for (uint64_t b = 0; b < nonzero && !r.failed(); ++b) {
      uint32_t index = r.U32();
      uint64_t value = r.U64();
      if (index >= Histogram::kNumBuckets) {
        return Status::ParseError("metrics snapshot: bucket index out of range");
      }
      hist.buckets[index] = value;
    }
  }
  if (r.failed() || !r.AtEnd()) {
    return Status::ParseError("corrupt metrics snapshot");
  }
  return snap;
}

}  // namespace obs
}  // namespace visclean
