// The process metrics registry: named counters, gauges, and log-bucketed
// histograms with lock-free hot paths and mergeable point-in-time snapshots.
//
// Hot-path contract. Counter::Add, Gauge::Set, and Histogram::Record are
// wait-free: a relaxed atomic add on a shard slot picked per thread, no
// locks, no allocation. The registry mutex is only taken to *resolve* a
// metric by name (done once per call site, handles are stable pointers) and
// to Snapshot(). Relaxed ordering is sound because metrics are monotone
// accumulators read asynchronously — a snapshot is a consistent-enough sum,
// never a synchronization point.
//
// Snapshots merge associatively and commutatively (counters and histogram
// buckets add, gauges add, max takes max), which is what lets the router
// aggregate per-shard snapshots into one fleet view (shard::ShardRouter's
// kMetrics handling) and lets tests assert merge algebra directly.
//
// Kill switch. Compiling with -DVISCLEAN_OBS_OFF turns Histogram::Record
// into a no-op and compiles out the span tracer (obs/trace.h) and every
// VC_OBS-gated call site. Counters and gauges stay live: they back
// ServeStats/RouterStats, which predate this subsystem and must keep
// working — their cost (one relaxed add) equals the raw atomics they
// replaced, so the switch removes exactly the instrumentation this
// subsystem *added*. bench_serve_wire's obs_overhead section measures both
// op costs and gates the projected per-step overhead at <= 2%.
#ifndef VISCLEAN_OBS_METRICS_H_
#define VISCLEAN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace visclean {
namespace obs {

/// True when instrumentation call sites are compiled in (no
/// -DVISCLEAN_OBS_OFF). Exposed so benches can report which build they
/// measured.
#ifdef VISCLEAN_OBS_OFF
inline constexpr bool kObsCompiled = false;
#else
inline constexpr bool kObsCompiled = true;
#endif

/// Shard slot index of the calling thread. Threads round-robin over slots
/// at first use, so concurrent writers of one metric land on different
/// cache lines.
size_t ThreadShardIndex();

/// \brief Monotone counter, sharded over cache-line-padded atomics.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) {
    slots_[ThreadShardIndex() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kShards> slots_;
};

/// \brief Last-write-wins instantaneous value (resident sessions, open
/// connections). Add/Sub for the common up-down use.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log-bucketed histogram of non-negative integer samples
/// (latencies in nanoseconds, batch occupancies, byte counts).
///
/// Bucket layout is HDR-style linear-log: values below 2^kSubBits are exact
/// (one bucket per value); above that each power-of-two octave splits into
/// 2^kSubBits sub-buckets, so the relative bucket width — and therefore the
/// worst-case percentile error — is bounded by 2^-kSubBits (12.5%). The
/// whole u64 range maps into kNumBuckets buckets with pure bit math.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  /// 8 exact small-value buckets + 61 octaves x 8 sub-buckets.
  static constexpr size_t kNumBuckets = 496;
  static constexpr size_t kShards = 4;

  /// Bucket holding `v`. Branch + bit math only.
  static size_t BucketIndex(uint64_t v) {
    if (v < (uint64_t{1} << kSubBits)) return static_cast<size_t>(v);
    int msb = 63 - CountLeadingZeros(v);
    size_t exp = static_cast<size_t>(msb - kSubBits);
    uint64_t sub = v >> exp;  // in [2^kSubBits, 2^(kSubBits+1))
    return ((exp + 1) << kSubBits) |
           static_cast<size_t>(sub - (uint64_t{1} << kSubBits));
  }

  /// Smallest value mapping to bucket `index` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < (size_t{1} << kSubBits)) return index;
    size_t exp = (index >> kSubBits) - 1;
    uint64_t sub = (index & ((size_t{1} << kSubBits) - 1)) +
                   (uint64_t{1} << kSubBits);
    return sub << exp;
  }

  /// The value a bucket reports for percentile readout: its midpoint (small
  /// buckets are exact). Error vs the true sample is bounded by half the
  /// bucket width.
  static uint64_t BucketMidpoint(size_t index) {
    uint64_t lo = BucketLowerBound(index);
    if (index + 1 >= kNumBuckets) return lo;
    uint64_t hi = BucketLowerBound(index + 1);
    return lo + (hi - lo - 1) / 2;
  }

  void Record(uint64_t v) {
#ifndef VISCLEAN_OBS_OFF
    Shard& s = shards_[ThreadShardIndex() % kShards];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = s.max.load(std::memory_order_relaxed);
    while (v > seen &&
           !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.count.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;

  static int CountLeadingZeros(uint64_t v) {
    // v != 0 at every call site (guarded by the small-value branch).
    return __builtin_clzll(v);
  }

  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_;
};

/// \brief Point-in-time histogram state: dense bucket counts + count/sum/max.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  /// Value at percentile `p` in [0, 100]: the midpoint of the bucket holding
  /// the rank-⌈p/100·count⌉ sample (0 when empty). Within one bucket width
  /// of the exact order statistic by construction.
  uint64_t Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) /
                                                      static_cast<double>(count); }
  void Merge(const HistogramSnapshot& other);
};

/// \brief Mergeable snapshot of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Associative + commutative: counters and histograms add, gauges add
  /// (a fleet gauge is the sum of per-shard gauges), max takes max.
  void Merge(const MetricsSnapshot& other);
};

/// \brief Named-metric registry. One per SessionManager / ShardRouter (so
/// per-shard stats stay separable) plus a process-wide Default() for code
/// with no natural owner. Thread-safe; returned pointers are stable for the
/// registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (standalone tools, default server wiring).
  static Registry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Binary snapshot codec (serve/codec.h Writer/Reader) — the kMetrics wire
/// payload. Buckets travel sparse (index, count) so an idle registry
/// encodes small. Decode rejects truncation, trailing bytes, and
/// out-of-range bucket indices.
std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);
Result<MetricsSnapshot> DecodeMetricsSnapshot(const std::string& bytes);

}  // namespace obs
}  // namespace visclean

#endif  // VISCLEAN_OBS_METRICS_H_
