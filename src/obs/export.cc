#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "common/json_writer.h"

namespace visclean {
namespace obs {

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "visclean_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void HistogramJson(JsonWriter& json, const HistogramSnapshot& hist) {
  json.BeginObject();
  json.Key("count");
  json.Int(static_cast<int64_t>(hist.count));
  json.Key("sum");
  json.Int(static_cast<int64_t>(hist.sum));
  json.Key("max");
  json.Int(static_cast<int64_t>(hist.max));
  json.Key("mean");
  json.Number(hist.Mean());
  json.Key("p50");
  json.Int(static_cast<int64_t>(hist.Percentile(50)));
  json.Key("p95");
  json.Int(static_cast<int64_t>(hist.Percentile(95)));
  json.Key("p99");
  json.Int(static_cast<int64_t>(hist.Percentile(99)));
  json.EndObject();
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendU64(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendI64(out, value);
    out += "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      // le is the bucket's inclusive upper bound (next bucket's lower - 1).
      uint64_t le = i + 1 < Histogram::kNumBuckets
                        ? Histogram::BucketLowerBound(i + 1) - 1
                        : hist.max;
      out += prom + "_bucket{le=\"";
      AppendU64(out, le);
      out += "\"} ";
      AppendU64(out, cumulative);
      out += "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, hist.count);
    out += "\n";
    out += prom + "_count ";
    AppendU64(out, hist.count);
    out += "\n";
    out += prom + "_sum ";
    AppendU64(out, hist.sum);
    out += "\n";
  }
  return out;
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot, bool pretty) {
  JsonWriter json = pretty ? JsonWriter::Pretty() : JsonWriter();
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name);
    json.Int(static_cast<int64_t>(value));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name);
    json.Int(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    json.Key(name);
    HistogramJson(json, hist);
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

std::vector<TraceTreeNode> AssembleTraceTree(const CapturedTrace& trace) {
  // Sort spans by start so siblings land in chronological order. A span
  // whose parent was evicted from the ring surfaces as an extra root rather
  // than disappearing.
  std::vector<SpanRecord> spans = trace.spans;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < spans.size(); ++i) index_of[spans[i].span_id] = i;
  std::vector<std::vector<size_t>> kids(spans.size());
  std::vector<bool> is_child(spans.size(), false);
  for (size_t i = 0; i < spans.size(); ++i) {
    uint64_t parent = spans[i].parent_id;
    if (parent == 0) continue;
    auto it = index_of.find(parent);
    if (it == index_of.end() || it->second == i) continue;
    kids[it->second].push_back(i);
    is_child[i] = true;
  }
  // Span ids come from one monotone counter, so parent links cannot cycle;
  // recursion depth is bounded by the nesting depth of one request.
  std::function<TraceTreeNode(size_t)> build = [&](size_t i) {
    TraceTreeNode node{spans[i], {}};
    node.children.reserve(kids[i].size());
    for (size_t child : kids[i]) node.children.push_back(build(child));
    return node;
  };
  std::vector<TraceTreeNode> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (!is_child[i]) roots.push_back(build(i));
  }
  return roots;
}

namespace {

void SpanTreeJson(JsonWriter& json, const TraceTreeNode& node) {
  json.BeginObject();
  json.Key("name");
  json.String(node.span.name);
  json.Key("span_id");
  json.Int(static_cast<int64_t>(node.span.span_id));
  json.Key("parent_id");
  json.Int(static_cast<int64_t>(node.span.parent_id));
  json.Key("start_ns");
  json.Int(static_cast<int64_t>(node.span.start_ns));
  json.Key("duration_ns");
  json.Int(static_cast<int64_t>(node.span.end_ns >= node.span.start_ns
                                    ? node.span.end_ns - node.span.start_ns
                                    : 0));
  json.Key("children");
  json.BeginArray();
  for (const TraceTreeNode& child : node.children) SpanTreeJson(json, child);
  json.EndArray();
  json.EndObject();
}

void FormatNode(std::string& out, const TraceTreeNode& node, int depth,
                uint64_t trace_start) {
  for (int i = 0; i < depth; ++i) out += "  ";
  uint64_t duration = node.span.end_ns >= node.span.start_ns
                          ? node.span.end_ns - node.span.start_ns
                          : 0;
  // Signed offset: retroactively-attached children (frame decode on the IO
  // thread, queue wait) legitimately start before the root span opened.
  int64_t offset_ns = static_cast<int64_t>(node.span.start_ns) -
                      static_cast<int64_t>(trace_start);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%-*s %+9.3fms %10.3fms\n",
                40 - 2 * depth > 0 ? 40 - 2 * depth : 1,
                node.span.name.c_str(), static_cast<double>(offset_ns) / 1e6,
                static_cast<double>(duration) / 1e6);
  out += buf;
  for (const TraceTreeNode& child : node.children) {
    FormatNode(out, child, depth + 1, trace_start);
  }
}

}  // namespace

std::string ExportTracesJson(const std::vector<CapturedTrace>& traces,
                             bool pretty) {
  JsonWriter json = pretty ? JsonWriter::Pretty() : JsonWriter();
  json.BeginArray();
  for (const CapturedTrace& trace : traces) {
    json.BeginObject();
    json.Key("trace_id");
    json.Int(static_cast<int64_t>(trace.trace_id));
    json.Key("root");
    json.String(trace.root_name);
    json.Key("duration_ns");
    json.Int(static_cast<int64_t>(trace.duration_ns));
    json.Key("spans");
    json.BeginArray();
    for (const TraceTreeNode& root : AssembleTraceTree(trace)) {
      SpanTreeJson(json, root);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  return json.TakeString();
}

std::string FormatTraceTree(const CapturedTrace& trace) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "trace %llu (%s, %.3fms)\n",
                static_cast<unsigned long long>(trace.trace_id),
                trace.root_name.c_str(),
                static_cast<double>(trace.duration_ns) / 1e6);
  out += buf;
  std::vector<TraceTreeNode> roots = AssembleTraceTree(trace);
  uint64_t trace_start = 0;
  for (const TraceTreeNode& root : roots) {
    if (trace_start == 0 || root.span.start_ns < trace_start) {
      trace_start = root.span.start_ns;
    }
  }
  for (const TraceTreeNode& root : roots) {
    FormatNode(out, root, 1, trace_start);
  }
  return out;
}

}  // namespace obs
}  // namespace visclean
