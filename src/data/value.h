// Dynamically typed cell value used by Table.
//
// A Value is null, a double, or a string. Integer data is stored as double
// (the VQL layer only ever aggregates numerically, matching the paper's
// assumption that the Y-axis is numerical). Missing values — one of the four
// error types of Section II-C — are first-class nulls.
#ifndef VISCLEAN_DATA_VALUE_H_
#define VISCLEAN_DATA_VALUE_H_

#include <string>
#include <string_view>
#include <variant>

namespace visclean {

/// Runtime type of a Value.
enum class ValueType { kNull, kNumber, kString };

/// \brief A single relational cell: null, number, or string.
///
/// Values are small, copyable, and totally ordered (null < number < string;
/// within a type, the natural order). Equality is exact.
class Value {
 public:
  /// Null (missing) value.
  Value() : data_(std::monostate{}) {}
  /// Numeric value.
  explicit Value(double number) : data_(number) {}
  /// String value.
  explicit Value(std::string text) : data_(std::move(text)) {}
  explicit Value(const char* text) : data_(std::string(text)) {}

  static Value Null() { return Value(); }
  static Value Number(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    if (std::holds_alternative<std::monostate>(data_)) return ValueType::kNull;
    if (std::holds_alternative<double>(data_)) return ValueType::kNumber;
    return ValueType::kString;
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_number() const { return type() == ValueType::kNumber; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Numeric content; aborts if not a number.
  double AsNumber() const;
  /// String content; aborts if not a string.
  const std::string& AsString() const;

  /// Best-effort numeric view: numbers return themselves, numeric-looking
  /// strings are parsed, everything else (including null) yields `fallback`.
  double ToNumberOr(double fallback) const;

  /// Render for display/CSV: null -> "", number -> shortest round-trip-ish
  /// decimal, string -> itself.
  std::string ToDisplayString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: null < number < string.
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, double, std::string> data_;
};

}  // namespace visclean

#endif  // VISCLEAN_DATA_VALUE_H_
