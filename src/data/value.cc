#include "data/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"
#include "common/strings.h"

namespace visclean {

double Value::AsNumber() const {
  VC_CHECK(is_number(), "Value::AsNumber on non-number");
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  VC_CHECK(is_string(), "Value::AsString on non-string");
  return std::get<std::string>(data_);
}

double Value::ToNumberOr(double fallback) const {
  if (is_number()) return std::get<double>(data_);
  if (is_string()) {
    const std::string& s = std::get<std::string>(data_);
    if (IsNumber(s)) return std::strtod(s.c_str(), nullptr);
  }
  return fallback;
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kString:
      return std::get<std::string>(data_);
    case ValueType::kNumber: {
      double v = std::get<double>(data_);
      // Integral values print without a decimal point so that group keys
      // like years render as "2013", not "2013.000000".
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return buf;
    }
  }
  return "";
}

bool Value::operator<(const Value& other) const {
  int ta = static_cast<int>(type());
  int tb = static_cast<int>(other.type());
  if (ta != tb) return ta < tb;
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kNumber:
      return std::get<double>(data_) < std::get<double>(other.data_);
    case ValueType::kString:
      return std::get<std::string>(data_) < std::get<std::string>(other.data_);
  }
  return false;
}

}  // namespace visclean
