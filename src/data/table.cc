#include "data/table.h"

#include <algorithm>

namespace visclean {

size_t Table::AppendRow(Row row) {
  VC_CHECK(row.size() == schema_.num_columns(),
           "row arity does not match schema");
  rows_.push_back(std::move(row));
  dead_.push_back(false);
  journal_.push_back(rows_.size() - 1);
  return rows_.size() - 1;
}

void Table::MarkDead(size_t row) {
  VC_CHECK(row < rows_.size(), "MarkDead: row out of range");
  if (!dead_[row]) {
    dead_[row] = true;
    ++num_dead_;
    journal_.push_back(row);
  }
}

void Table::Revive(size_t row) {
  VC_CHECK(row < rows_.size(), "Revive: row out of range");
  if (dead_[row]) {
    dead_[row] = false;
    --num_dead_;
    journal_.push_back(row);
  }
}

void Table::Set(size_t row, size_t col, Value v) {
  VC_CHECK(row < rows_.size(), "Set: row out of range");
  VC_CHECK(col < schema_.num_columns(), "Set: column out of range");
  rows_[row][col] = std::move(v);
  journal_.push_back(row);
}

Table Table::Clone() const {
  Table copy = *this;
  copy.journal_base_ = mutation_count();
  copy.journal_.clear();
  return copy;
}

Result<Value> Table::Get(size_t row, const std::string& column) const {
  if (row >= rows_.size()) return Status::OutOfRange("row out of range");
  Result<size_t> col = schema_.IndexOf(column);
  if (!col.ok()) return col.status();
  return rows_[row][col.value()];
}

std::vector<size_t> Table::LiveRowIds() const {
  std::vector<size_t> out;
  out.reserve(num_live_rows());
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!dead_[i]) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Table::MutatedRowsSince(uint64_t since) const {
  VC_CHECK(since >= journal_base_, "MutatedRowsSince: journal compacted past");
  VC_CHECK(since <= mutation_count(), "MutatedRowsSince: future position");
  std::vector<size_t> rows(journal_.begin() + (since - journal_base_),
                           journal_.end());
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

void Table::ResetJournal(uint64_t base) {
  VC_CHECK(base >= journal_base_, "ResetJournal: watermark moved backwards");
  journal_.clear();
  journal_base_ = base;
}

void Table::CompactJournal(uint64_t upto) {
  if (upto <= journal_base_) return;
  VC_CHECK(upto <= mutation_count(), "CompactJournal: future position");
  journal_.erase(journal_.begin(),
                 journal_.begin() + (upto - journal_base_));
  journal_base_ = upto;
}

}  // namespace visclean
