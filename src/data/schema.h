// Column schema for Table.
#ifndef VISCLEAN_DATA_SCHEMA_H_
#define VISCLEAN_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace visclean {

/// Declared type of a column. kCategorical columns hold strings that denote
/// entities (venues, teams, publishers); kNumeric columns hold measures that
/// VQL may aggregate; kText columns hold free text used only for matching.
enum class ColumnType { kCategorical, kNumeric, kText };

/// \brief One column declaration: a name and a type.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kText;
};

/// \brief Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`, or an error when absent.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True when a column with this name exists.
  bool Contains(const std::string& name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace visclean

#endif  // VISCLEAN_DATA_SCHEMA_H_
