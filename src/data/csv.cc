#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace visclean {

namespace {

// Splits CSV text into records of raw fields, honoring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field_started && !field.empty()) {
          return Status::ParseError("quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (field_started || !record.empty()) end_record();
  return records;
}

Value ParseField(const std::string& raw, ColumnType type) {
  if (raw.empty()) return Value::Null();
  if (type == ColumnType::kNumeric) {
    if (IsNumber(raw)) return Value::Number(std::strtod(raw.c_str(), nullptr));
    // Numeric column with a non-numeric token (e.g. "N.A."): treat as
    // missing; this is exactly the paper's missing-Citations case.
    return Value::Null();
  }
  return Value::String(raw);
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsv(const std::string& text, const Schema* schema_hint) {
  Result<std::vector<std::vector<std::string>>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  const auto& records = tokens.value();
  if (records.empty()) return Status::ParseError("empty CSV input");

  const std::vector<std::string>& header = records.front();
  size_t ncols = header.size();

  Schema schema;
  if (schema_hint != nullptr) {
    if (schema_hint->num_columns() != ncols) {
      return Status::InvalidArgument("schema hint arity != CSV header arity");
    }
    schema = *schema_hint;
  } else {
    // Infer: a column is numeric when every non-empty field parses as a
    // number (and at least one non-empty field exists).
    std::vector<bool> numeric(ncols, true);
    std::vector<bool> has_data(ncols, false);
    for (size_t r = 1; r < records.size(); ++r) {
      for (size_t c = 0; c < ncols && c < records[r].size(); ++c) {
        const std::string& f = records[r][c];
        if (f.empty()) continue;
        has_data[c] = true;
        if (!IsNumber(f)) numeric[c] = false;
      }
    }
    std::vector<ColumnSpec> specs(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      specs[c].name = header[c];
      specs[c].type = (numeric[c] && has_data[c]) ? ColumnType::kNumeric
                                                  : ColumnType::kText;
    }
    schema = Schema(std::move(specs));
  }

  Table table(schema);
  for (size_t r = 1; r < records.size(); ++r) {
    const auto& rec = records[r];
    if (rec.size() != ncols) {
      return Status::ParseError(
          StrFormat("row %zu has %zu fields, expected %zu", r, rec.size(),
                    ncols));
    }
    Row row(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row[c] = ParseField(rec[c], schema.column(c).type);
    }
    table.AppendRow(std::move(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const Schema* schema_hint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsv(buf.str(), schema_hint);
}

std::string WriteCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.column(c).name);
  }
  out += '\n';
  for (size_t r : table.LiveRowIds()) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += QuoteField(table.at(r, c).ToDisplayString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsv(table);
  return Status::Ok();
}

}  // namespace visclean
