#include "data/schema.h"

namespace visclean {

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace visclean
