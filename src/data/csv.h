// RFC-4180-ish CSV reader/writer for Table.
#ifndef VISCLEAN_DATA_CSV_H_
#define VISCLEAN_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace visclean {

/// \brief Parses CSV text (first line = header) into a Table.
///
/// Column types come from `schema_hint` when provided; otherwise every field
/// that parses as a number in all rows becomes kNumeric and the rest kText.
/// Empty fields become null Values. Supports quoted fields with embedded
/// commas, quotes ("" escape) and newlines.
Result<Table> ReadCsv(const std::string& text,
                      const Schema* schema_hint = nullptr);

/// Reads a CSV file from disk. See ReadCsv.
Result<Table> ReadCsvFile(const std::string& path,
                          const Schema* schema_hint = nullptr);

/// Serializes live rows of `table` (header + data) as CSV text.
std::string WriteCsv(const Table& table);

/// Writes WriteCsv(table) to `path`.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace visclean

#endif  // VISCLEAN_DATA_CSV_H_
