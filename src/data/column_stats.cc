#include "data/column_stats.h"

#include <cmath>
#include <set>

namespace visclean {

ColumnStats ComputeColumnStats(const Table& table, size_t col) {
  ColumnStats stats;
  std::set<std::string> distinct;
  double sum = 0.0, sum_sq = 0.0;
  bool first_numeric = true;
  for (size_t r : table.LiveRowIds()) {
    ++stats.num_rows;
    const Value& v = table.at(r, col);
    if (v.is_null()) {
      ++stats.num_null;
      continue;
    }
    distinct.insert(v.ToDisplayString());
    if (v.is_number()) {
      double x = v.AsNumber();
      ++stats.num_numeric;
      sum += x;
      sum_sq += x * x;
      if (first_numeric) {
        stats.min = stats.max = x;
        first_numeric = false;
      } else {
        stats.min = std::min(stats.min, x);
        stats.max = std::max(stats.max, x);
      }
    }
  }
  stats.num_distinct = distinct.size();
  if (stats.num_numeric > 0) {
    stats.mean = sum / stats.num_numeric;
    double var = sum_sq / stats.num_numeric - stats.mean * stats.mean;
    stats.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  return stats;
}

TableStats ComputeTableStats(const Table& table) {
  TableStats out;
  out.num_attributes = table.schema().num_columns();
  out.num_tuples = table.num_live_rows();
  size_t nulls = 0;
  for (size_t c = 0; c < out.num_attributes; ++c) {
    ColumnStats cs = ComputeColumnStats(table, c);
    nulls += cs.num_null;
    out.per_column[table.schema().column(c).name] = cs;
  }
  size_t cells = out.num_tuples * out.num_attributes;
  out.missing_fraction = cells == 0 ? 0.0 : static_cast<double>(nulls) / cells;
  return out;
}

}  // namespace visclean
