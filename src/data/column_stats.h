// Per-column summary statistics (used by detectors, generators, and the
// Table IV dataset-statistics bench).
#ifndef VISCLEAN_DATA_COLUMN_STATS_H_
#define VISCLEAN_DATA_COLUMN_STATS_H_

#include <map>
#include <string>

#include "common/status.h"
#include "data/table.h"

namespace visclean {

/// \brief Summary of one column over the live rows of a table.
struct ColumnStats {
  size_t num_rows = 0;      ///< live rows scanned
  size_t num_null = 0;      ///< missing cells
  size_t num_distinct = 0;  ///< distinct non-null values
  double min = 0.0;         ///< numeric cells only
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  size_t num_numeric = 0;   ///< cells that were numeric

  double null_fraction() const {
    return num_rows == 0 ? 0.0 : static_cast<double>(num_null) / num_rows;
  }
};

/// Computes stats for column `col` of `table`.
ColumnStats ComputeColumnStats(const Table& table, size_t col);

/// \brief Whole-table statistics matching the rows of Table IV in the paper.
struct TableStats {
  size_t num_attributes = 0;
  size_t num_tuples = 0;       ///< live rows
  double missing_fraction = 0; ///< nulls / (rows * cols)
  std::map<std::string, ColumnStats> per_column;
};

/// Computes TableStats for the live rows of `table`.
TableStats ComputeTableStats(const Table& table);

}  // namespace visclean

#endif  // VISCLEAN_DATA_COLUMN_STATS_H_
