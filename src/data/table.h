// In-memory relational table: the substrate every other module operates on.
#ifndef VISCLEAN_DATA_TABLE_H_
#define VISCLEAN_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace visclean {

/// \brief One tuple; a vector of Values aligned with a Schema.
using Row = std::vector<Value>;

/// \brief Row-oriented in-memory table.
///
/// Rows carry stable ids: the cleaning pipeline merges duplicates by masking
/// rows (tombstones) rather than physically erasing them, so that the
/// errors-and-repairs graph can keep referring to original tuple ids across
/// iterations (Section III step 6).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Appends a row; aborts if the arity does not match the schema.
  /// Returns the new row's id.
  size_t AppendRow(Row row);

  /// Total number of row slots, including tombstoned rows.
  size_t num_rows() const { return rows_.size(); }
  /// Number of live (non-tombstoned) rows.
  size_t num_live_rows() const { return num_rows() - num_dead_; }

  /// True when the row id is masked out (merged away by deduplication).
  bool is_dead(size_t row) const { return dead_[row]; }
  /// Masks a row out of all subsequent scans.
  void MarkDead(size_t row);
  /// Un-masks a row (used by UndoLog to roll back speculative merges).
  void Revive(size_t row);

  const Row& row(size_t i) const { return rows_[i]; }
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }
  /// Overwrites one cell (repairs: imputation, outlier fix, standardization).
  void Set(size_t row, size_t col, Value v);

  /// Cell lookup by column name; error when the column is missing.
  Result<Value> Get(size_t row, const std::string& column) const;

  /// Ids of all live rows, ascending.
  std::vector<size_t> LiveRowIds() const;

  /// Deep copy (schema, rows, tombstones). The cleaning session estimates
  /// benefits by speculatively repairing a copy (Section V-A).
  ///
  /// The clone's mutation journal starts compacted: clones never replay the
  /// original's history (every journal consumer snapshots its own watermark
  /// on the table it was primed against), and speculative per-candidate
  /// copies would otherwise drag the full journal along. mutation_count() is
  /// preserved so watermarks taken on the original stay comparable.
  Table Clone() const;

  // ---- Mutation journal ----
  //
  // Every mutation (AppendRow / Set / MarkDead / Revive) appends the touched
  // row id to an internal journal. Incremental consumers (the benefit
  // engine's provenance cache) snapshot mutation_count(), let repairs happen
  // through any code path, and later ask exactly which rows changed — so a
  // cache can invalidate per row instead of rebuilding from the whole table.

  /// Monotone count of mutations applied over the table's lifetime
  /// (compaction never decreases it).
  uint64_t mutation_count() const { return journal_base_ + journal_.size(); }

  /// Sorted, deduplicated ids of rows mutated at journal positions
  /// [since, mutation_count()). `since` must not predate the last
  /// CompactJournal point.
  std::vector<size_t> MutatedRowsSince(uint64_t since) const;

  /// Drops journal entries before position `upto` (consumers call this after
  /// MutatedRowsSince so the journal stays bounded per iteration). With
  /// several consumers, compact only to the minimum of their watermarks.
  void CompactJournal(uint64_t upto);

  /// Number of journal entries currently retained (diagnostics; tests assert
  /// clones start compacted).
  size_t journal_entries() const { return journal_.size(); }

  /// Drops all retained journal entries and pins mutation_count() to `base`.
  /// Snapshot restore uses this to stamp a rebuilt table with the watermark
  /// its serialized ancestor carried, so watermarks taken before the
  /// snapshot stay comparable. `base` must not move mutation_count()
  /// backwards (journal consumers rely on monotonicity).
  void ResetJournal(uint64_t base);

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> dead_;
  size_t num_dead_ = 0;
  std::vector<size_t> journal_;  ///< row id per mutation, append-only
  uint64_t journal_base_ = 0;    ///< absolute position of journal_[0]
};

}  // namespace visclean

#endif  // VISCLEAN_DATA_TABLE_H_
