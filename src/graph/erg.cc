#include "graph/erg.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace visclean {

uint64_t Erg::PairKey(size_t u, size_t v) {
  if (u > v) std::swap(u, v);
  VC_CHECK(v < (uint64_t{1} << 32), "PairKey: vertex index exceeds 2^32");
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

size_t Erg::AddVertex(ErgVertex vertex) {
  size_t row = vertex.row;
  vertices_.push_back(std::move(vertex));
  adjacency_.emplace_back();
  vertex_dead_.push_back(0);
  size_t index = vertices_.size() - 1;
  vertex_of_row_[row] = index;  // a re-added row binds to the fresh slot
  return index;
}

size_t Erg::AddEdge(ErgEdge edge) {
  VC_CHECK(edge.u < vertices_.size() && edge.v < vertices_.size(),
           "AddEdge: endpoint out of range");
  VC_CHECK(edge.u != edge.v, "AddEdge: self loop");
  VC_CHECK(vertex_live(edge.u) && vertex_live(edge.v),
           "AddEdge: endpoint is a tombstone");
  if (edge.u > edge.v) std::swap(edge.u, edge.v);
  edges_.push_back(std::move(edge));
  edge_dead_.push_back(0);
  size_t index = edges_.size() - 1;
  adjacency_[edges_[index].u].push_back(index);
  adjacency_[edges_[index].v].push_back(index);
  // First live edge per pair wins the lookup slot (parallel edges from
  // build-once callers stay addressable by index only).
  edge_of_pair_.emplace(PairKey(edges_[index].u, edges_[index].v), index);
  return index;
}

void Erg::RetractEdge(size_t index) {
  VC_CHECK(index < edges_.size(), "RetractEdge: index out of range");
  VC_CHECK(edge_live(index), "RetractEdge: already retracted");
  const ErgEdge& edge = edges_[index];
  for (size_t endpoint : {edge.u, edge.v}) {
    std::vector<size_t>& adj = adjacency_[endpoint];
    adj.erase(std::remove(adj.begin(), adj.end(), index), adj.end());
  }
  auto it = edge_of_pair_.find(PairKey(edge.u, edge.v));
  if (it != edge_of_pair_.end() && it->second == index) {
    edge_of_pair_.erase(it);
  }
  edge_dead_[index] = 1;
  ++dead_edges_;
}

void Erg::RetractVertex(size_t index) {
  VC_CHECK(index < vertices_.size(), "RetractVertex: index out of range");
  VC_CHECK(vertex_live(index), "RetractVertex: already retracted");
  VC_CHECK(adjacency_[index].empty(),
           "RetractVertex: vertex still has live incident edges");
  auto it = vertex_of_row_.find(vertices_[index].row);
  if (it != vertex_of_row_.end() && it->second == index) {
    vertex_of_row_.erase(it);
  }
  vertex_dead_[index] = 1;
  ++dead_vertices_;
}

size_t Erg::VertexOfRow(size_t row) const {
  auto it = vertex_of_row_.find(row);
  if (it == vertex_of_row_.end() || !vertex_live(it->second)) return kNoVertex;
  return it->second;
}

size_t Erg::EdgeBetween(size_t u, size_t v) const {
  if (u == v) return kNoEdge;
  auto it = edge_of_pair_.find(PairKey(u, v));
  if (it == edge_of_pair_.end() || !edge_live(it->second)) return kNoEdge;
  return it->second;
}

Erg Erg::Compacted() const {
  Erg out;
  std::vector<size_t> live_vertices;
  live_vertices.reserve(num_live_vertices());
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertex_live(i)) live_vertices.push_back(i);
  }
  // Canonical vertex order: ascending row id (stable on index for the
  // build-once style, where one row may back several slots).
  std::stable_sort(live_vertices.begin(), live_vertices.end(),
                   [&](size_t a, size_t b) {
                     return vertices_[a].row < vertices_[b].row;
                   });
  std::vector<size_t> remap(vertices_.size(), kNoVertex);
  for (size_t i : live_vertices) {
    remap[i] = out.AddVertex(vertices_[i]);
  }

  std::vector<size_t> live_edges;
  live_edges.reserve(num_live_edges());
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (edge_live(e)) live_edges.push_back(e);
  }
  // Canonical edge order: ascending (row_u, row_v) of the remapped
  // endpoints (stable on index for parallel edges).
  // NB: explicit value pair — std::minmax over locals returns a pair of
  // dangling references if deduced.
  auto row_pair = [&](size_t e) -> std::pair<size_t, size_t> {
    size_t ra = vertices_[edges_[e].u].row;
    size_t rb = vertices_[edges_[e].v].row;
    return std::minmax(ra, rb);
  };
  std::stable_sort(live_edges.begin(), live_edges.end(),
                   [&](size_t a, size_t b) { return row_pair(a) < row_pair(b); });
  for (size_t e : live_edges) {
    ErgEdge edge = edges_[e];
    edge.u = remap[edge.u];
    edge.v = remap[edge.v];
    out.AddEdge(std::move(edge));
  }
  return out;
}

}  // namespace visclean
