#include "graph/erg.h"

#include <algorithm>

#include "common/status.h"

namespace visclean {

size_t Erg::AddVertex(ErgVertex vertex) {
  vertices_.push_back(std::move(vertex));
  adjacency_.emplace_back();
  return vertices_.size() - 1;
}

size_t Erg::AddEdge(ErgEdge edge) {
  VC_CHECK(edge.u < vertices_.size() && edge.v < vertices_.size(),
           "AddEdge: endpoint out of range");
  VC_CHECK(edge.u != edge.v, "AddEdge: self loop");
  if (edge.u > edge.v) std::swap(edge.u, edge.v);
  edges_.push_back(std::move(edge));
  size_t index = edges_.size() - 1;
  adjacency_[edges_[index].u].push_back(index);
  adjacency_[edges_[index].v].push_back(index);
  return index;
}

size_t Erg::VertexOfRow(size_t row) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].row == row) return i;
  }
  return kNoVertex;
}

}  // namespace visclean
