#include "graph/erg.h"

#include <algorithm>

#include "common/status.h"

namespace visclean {

size_t Erg::AddVertex(ErgVertex vertex) {
  vertices_.push_back(std::move(vertex));
  adjacency_valid_ = false;
  return vertices_.size() - 1;
}

size_t Erg::AddEdge(ErgEdge edge) {
  VC_CHECK(edge.u < vertices_.size() && edge.v < vertices_.size(),
           "AddEdge: endpoint out of range");
  VC_CHECK(edge.u != edge.v, "AddEdge: self loop");
  if (edge.u > edge.v) std::swap(edge.u, edge.v);
  edges_.push_back(std::move(edge));
  adjacency_valid_ = false;
  return edges_.size() - 1;
}

void Erg::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  adjacency_.assign(vertices_.size(), {});
  for (size_t e = 0; e < edges_.size(); ++e) {
    adjacency_[edges_[e].u].push_back(e);
    adjacency_[edges_[e].v].push_back(e);
  }
  adjacency_valid_ = true;
}

const std::vector<size_t>& Erg::IncidentEdges(size_t i) const {
  EnsureAdjacency();
  return adjacency_[i];
}

size_t Erg::VertexOfRow(size_t row) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].row == row) return i;
  }
  return kNoVertex;
}

}  // namespace visclean
