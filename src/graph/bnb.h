// Branch-and-bound heaviest connected k-subgraph (the Letsios et al. [21]
// baseline of Section V-B) and its alpha-approximate variant.
#ifndef VISCLEAN_GRAPH_BNB_H_
#define VISCLEAN_GRAPH_BNB_H_

#include "graph/selector.h"

namespace visclean {

/// \brief Options for BnbSelector.
struct BnbOptions {
  /// Approximation ratio: a branch is pruned when its optimistic bound is
  /// <= alpha * best_so_far. 1.0 = exact; the paper evaluates 5-B&B and
  /// 10-B&B.
  double alpha = 1.0;
  /// Safety valve: stop after this many search-tree expansions and return
  /// the best subgraph found (0 = unlimited). Exact B&B is exponential in
  /// k — the very point of Fig. 17 — so benches cap it.
  size_t max_expansions = 0;
};

/// \brief Exact/approximate heaviest connected k-subgraph search.
///
/// Enumerates connected induced subgraphs via the ESU scheme (each set
/// visited once) and prunes with the optimistic bound "current benefit +
/// sum of the globally largest remaining edge benefits that could still
/// fit" — admissible, so alpha = 1 returns the true optimum.
class BnbSelector : public CqgSelector {
 public:
  explicit BnbSelector(BnbOptions options = {}) : options_(options) {}
  Cqg Select(const ErgView& erg, size_t k) override;
  std::string name() const override;

  /// Number of search-tree expansions of the last Select call.
  size_t last_expansions() const { return last_expansions_; }

 private:
  BnbOptions options_;
  size_t last_expansions_ = 0;
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_BNB_H_
