// Abstract interface for CQG selection algorithms (Section V-B) plus the
// factory used by benches and examples.
#ifndef VISCLEAN_GRAPH_SELECTOR_H_
#define VISCLEAN_GRAPH_SELECTOR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "graph/cqg.h"
#include "graph/erg.h"

namespace visclean {

/// \brief Strategy object returning the CQG to ask next.
///
/// Precondition: every ERG edge's `benefit` has been filled in by the
/// benefit model. Implementations must return a connected subgraph with at
/// most k vertices (fewer when the graph is too small or disconnected).
///
/// Selectors consume a read-only ErgView snapshot — the published,
/// compacted graph of the iteration — never the maintained working graph,
/// so selection can run at any thread count without observing in-flight
/// insert/retract mutation (see core/erg_cache.h).
class CqgSelector {
 public:
  virtual ~CqgSelector() = default;

  /// Selects a CQG with (up to) k vertices. An empty CQG means no
  /// questions remain.
  virtual Cqg Select(const ErgView& erg, size_t k) = 0;

  /// Algorithm name as used in the paper's plots ("GSS", "GSS+", "B&B", ...).
  virtual std::string name() const = 0;

  // ---- Snapshot hooks ----
  //
  // Most selectors are pure functions of the ERG and carry no state; the
  // Random baseline carries an RNG whose draws must survive a session
  // snapshot for the restored run to pick the same subgraphs.

  /// Serialized selector state; "" for stateless selectors.
  virtual std::string SaveState() const { return ""; }
  /// Restores a SaveState() string. Stateless selectors accept anything;
  /// stateful ones return false when the string does not parse.
  virtual bool LoadState(const std::string& state) {
    (void)state;
    return true;
  }
};

/// Creates a selector by name: "gss", "gss+", "bnb", "5-bnb", "10-bnb",
/// "random", "exact". Thin wrapper over SelectorRegistry::Create
/// (graph/selector_registry.h), where selectors self-register. The
/// alpha-B&B family parses the prefix strictly as a positive number
/// ("5x-bnb" is rejected). `seed` only affects "random". Unknown names
/// error.
Result<std::unique_ptr<CqgSelector>> MakeSelector(const std::string& name,
                                                  uint64_t seed = 7);

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_SELECTOR_H_
