// GSS (Algorithm 2, GreedySubgraphSelection) and its optimized variant
// GSS+ (edge pruning to the uncertain band + early termination after m
// candidate subgraphs), Section V-B.
#ifndef VISCLEAN_GRAPH_GSS_H_
#define VISCLEAN_GRAPH_GSS_H_

#include "graph/selector.h"

namespace visclean {

/// \brief Tuning knobs shared by GSS and GSS+.
struct GssOptions {
  // --- GSS+ only; ignored by plain GSS ---
  /// Edges whose tuple-match weight lies outside [prune_low, prune_high]
  /// are dropped before benefit sorting ("uncertain edges carry the
  /// information"; Fig. 8).
  double prune_low = 0.3;
  double prune_high = 0.7;
  /// Stop after this many complete candidate subgraphs have been formed
  /// (the paper fixes m = 20).
  size_t early_stop_subgraphs = 20;
};

/// \brief Faithful Algorithm 2: sort edges by benefit descending, grow
/// vertex sets greedily, evaluate each set the moment it reaches size k,
/// return the best.
class GssSelector : public CqgSelector {
 public:
  Cqg Select(const ErgView& erg, size_t k) override;
  std::string name() const override { return "GSS"; }
};

/// \brief GSS+ = GSS + edge pruning + early termination.
class GssPlusSelector : public CqgSelector {
 public:
  explicit GssPlusSelector(GssOptions options = {}) : options_(options) {}
  Cqg Select(const ErgView& erg, size_t k) override;
  std::string name() const override { return "GSS+"; }

 private:
  GssOptions options_;
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_GSS_H_
