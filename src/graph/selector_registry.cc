#include "graph/selector_registry.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <utility>

#include "graph/bnb.h"
#include "graph/exact_selector.h"
#include "graph/gss.h"
#include "graph/random_selector.h"

namespace visclean {

SelectorRegistry& SelectorRegistry::Instance() {
  static SelectorRegistry* registry = new SelectorRegistry();
  return *registry;
}

void SelectorRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

void SelectorRegistry::RegisterPattern(const std::string& label,
                                       PatternMatcher matches,
                                       PatternFactory factory) {
  patterns_.push_back({label, std::move(matches), std::move(factory)});
}

Result<std::unique_ptr<CqgSelector>> SelectorRegistry::Create(
    const std::string& name, uint64_t seed) const {
  auto it = factories_.find(name);
  if (it != factories_.end()) return it->second(seed);
  for (const Pattern& pattern : patterns_) {
    if (pattern.matches(name)) return pattern.factory(name, seed);
  }
  return Status::InvalidArgument("unknown selector '" + name + "'");
}

std::vector<std::string> SelectorRegistry::ExactNames() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

SelectorRegistrar::SelectorRegistrar(std::initializer_list<const char*> names,
                                     SelectorRegistry::Factory factory) {
  for (const char* name : names) {
    SelectorRegistry::Instance().Register(name, factory);
  }
}

SelectorRegistrar::SelectorRegistrar(const char* label,
                                     SelectorRegistry::PatternMatcher matches,
                                     SelectorRegistry::PatternFactory factory) {
  SelectorRegistry::Instance().RegisterPattern(label, std::move(matches),
                                               std::move(factory));
}

// ------------------------------------------------- built-in registrations --

namespace {

// Factory-made B&B carries a practical expansion cap so sessions and
// benches terminate; construct BnbSelector directly for the unbounded
// exact search.
constexpr size_t kBnbExpansionCap = 2000000;

bool IsBnbSuffix(const std::string& suffix) {
  return suffix == "bnb" || suffix == "B&B" || suffix == "b&b";
}

// Strict parse of the "<alpha>" prefix of "<alpha>-bnb": the entire prefix
// must be a finite number (no trailing junk — strtod's lax prefix rule used
// to accept "5x-bnb" as alpha 5). Returns nullopt on any malformation;
// range/positivity is checked by the caller so it can report precisely.
std::optional<double> ParseStrictDouble(const std::string& text) {
  if (text.empty()) return std::nullopt;
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(begin, &end);
  if (end != begin + text.size()) return std::nullopt;  // trailing junk
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

const SelectorRegistrar kGss(  // NOLINT(cert-err58-cpp)
    {"gss", "GSS"},
    [](uint64_t) -> Result<std::unique_ptr<CqgSelector>> {
      return std::unique_ptr<CqgSelector>(new GssSelector());
    });

const SelectorRegistrar kGssPlus(  // NOLINT(cert-err58-cpp)
    {"gss+", "GSS+"},
    [](uint64_t) -> Result<std::unique_ptr<CqgSelector>> {
      return std::unique_ptr<CqgSelector>(new GssPlusSelector());
    });

const SelectorRegistrar kBnb(  // NOLINT(cert-err58-cpp)
    {"bnb", "B&B", "b&b"},
    [](uint64_t) -> Result<std::unique_ptr<CqgSelector>> {
      BnbOptions options;
      options.max_expansions = kBnbExpansionCap;
      return std::unique_ptr<CqgSelector>(new BnbSelector(options));
    });

const SelectorRegistrar kRandom(  // NOLINT(cert-err58-cpp)
    {"random", "Random"},
    [](uint64_t seed) -> Result<std::unique_ptr<CqgSelector>> {
      return std::unique_ptr<CqgSelector>(new RandomSelector(seed));
    });

const SelectorRegistrar kExact(  // NOLINT(cert-err58-cpp)
    {"exact", "Exact"},
    [](uint64_t) -> Result<std::unique_ptr<CqgSelector>> {
      return std::unique_ptr<CqgSelector>(new ExactSelector());
    });

// "<alpha>-bnb" (e.g. "5-bnb", "2.5-bnb"): alpha-approximate B&B. The
// family claims every name with a -bnb/-B&B/-b&b suffix and a non-empty
// prefix, then validates the prefix strictly.
const SelectorRegistrar kAlphaBnb(  // NOLINT(cert-err58-cpp)
    "<alpha>-bnb",
    [](const std::string& name) {
      size_t dash = name.rfind('-');
      return dash != std::string::npos && dash > 0 &&
             IsBnbSuffix(name.substr(dash + 1));
    },
    [](const std::string& name,
       uint64_t) -> Result<std::unique_ptr<CqgSelector>> {
      size_t dash = name.rfind('-');
      std::optional<double> alpha = ParseStrictDouble(name.substr(0, dash));
      if (!alpha.has_value() || *alpha <= 0.0) {
        return Status::InvalidArgument(
            "invalid alpha in selector '" + name +
            "': expected '<positive number>-bnb' (e.g. '5-bnb')");
      }
      BnbOptions options;
      options.alpha = *alpha;
      options.max_expansions = kBnbExpansionCap;
      return std::unique_ptr<CqgSelector>(new BnbSelector(options));
    });

}  // namespace

}  // namespace visclean
