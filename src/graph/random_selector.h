// The Random baseline of Section VII: picks a random connected k-subgraph.
#ifndef VISCLEAN_GRAPH_RANDOM_SELECTOR_H_
#define VISCLEAN_GRAPH_RANDOM_SELECTOR_H_

#include "common/rng.h"
#include "graph/selector.h"

namespace visclean {

/// \brief Selects a CQG by a random walk: random seed edge, then repeatedly
/// absorbs a uniformly random frontier vertex until k vertices are in.
class RandomSelector : public CqgSelector {
 public:
  explicit RandomSelector(uint64_t seed) : rng_(seed) {}
  Cqg Select(const ErgView& erg, size_t k) override;
  std::string name() const override { return "Random"; }

  std::string SaveState() const override { return rng_.SaveState(); }
  bool LoadState(const std::string& state) override {
    return rng_.LoadState(state);
  }

 private:
  Rng rng_;
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_RANDOM_SELECTOR_H_
