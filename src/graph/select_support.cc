#include "graph/select_support.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"

namespace visclean {

void ErgSelectSupport::EnsureScratch(size_t vertices, size_t edges) const {
  // `edge_mark_` doubles as a per-vertex visited array in Connected.
  size_t ecap = std::max(edges, vertices);
  if (vertex_mark_ != nullptr && vertex_cap_ >= vertices &&
      edge_cap_ >= ecap) {
    return;
  }
  vertex_mark_store_.assign(vertices, 0);
  edge_mark_store_.assign(ecap, 0);
  stack_store_.assign(vertices, 0);
  vertex_mark_ = vertex_mark_store_.data();
  edge_mark_ = edge_mark_store_.data();
  stack_ = stack_store_.data();
  vertex_cap_ = vertices;
  edge_cap_ = ecap;
}

void ErgSelectSupport::Refresh(const Erg& erg, Arena* arena) {
  // Mirrors SortedEdgeOrder(AllEdgeIndices): every slot, liveness ignored —
  // selectors consume compacted snapshots, where every slot is live.
  edges_by_benefit_.resize(erg.num_edges());
  for (size_t i = 0; i < edges_by_benefit_.size(); ++i) {
    edges_by_benefit_[i] = i;
  }
  std::sort(edges_by_benefit_.begin(), edges_by_benefit_.end(),
            [&](size_t a, size_t b) {
              if (erg.edge(a).benefit != erg.edge(b).benefit) {
                return erg.edge(a).benefit > erg.edge(b).benefit;
              }
              return a < b;
            });

  // The benefit sequence along edges_by_benefit_ is the value-sorted
  // descending sequence B&B built, so these prefix sums accumulate in the
  // same floating-point order.
  benefit_prefix_.assign(erg.num_edges() + 1, 0.0);
  for (size_t i = 0; i < edges_by_benefit_.size(); ++i) {
    benefit_prefix_[i + 1] =
        benefit_prefix_[i] +
        std::max(0.0, erg.edge(edges_by_benefit_[i]).benefit);
  }

  size_t vcap = erg.num_vertices();
  size_t ecap = std::max(erg.num_edges(), erg.num_vertices());
  if (arena != nullptr) {
    // Fresh spans every refresh: arena memory is recycled across iteration
    // epochs, so the spans are zeroed here — a stale mark from a previous
    // epoch can then never equal a current (strictly growing) epoch value.
    vertex_mark_ = arena->AllocSpan<uint64_t>(vcap);
    edge_mark_ = arena->AllocSpan<uint64_t>(ecap);
    stack_ = arena->AllocSpan<size_t>(vcap);
    if (vcap > 0) std::memset(vertex_mark_, 0, vcap * sizeof(uint64_t));
    if (ecap > 0) std::memset(edge_mark_, 0, ecap * sizeof(uint64_t));
    vertex_cap_ = vcap;
    edge_cap_ = ecap;
    vertex_mark_store_.clear();
    edge_mark_store_.clear();
    stack_store_.clear();
  } else {
    vertex_mark_ = nullptr;  // force a zeroed heap (re)allocation
    EnsureScratch(vcap, erg.num_edges());
  }
  primed_ = true;
}

void ErgSelectSupport::Clear() {
  primed_ = false;
  edges_by_benefit_.clear();
  benefit_prefix_.clear();
  epoch_ = 0;
  vertex_mark_ = nullptr;
  edge_mark_ = nullptr;
  stack_ = nullptr;
  vertex_cap_ = 0;
  edge_cap_ = 0;
  vertex_mark_store_.clear();
  edge_mark_store_.clear();
  stack_store_.clear();
}

uint64_t ErgSelectSupport::NextEpoch() const {
  // A fresh support starts at epoch 0 with zeroed marks; the first call
  // moves to 1, so a stale zero mark can never read as "in set".
  return ++epoch_;
}

Cqg ErgSelectSupport::Induce(const Erg& erg, std::vector<size_t> vertices) const {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  EnsureScratch(erg.num_vertices(), erg.num_edges());
  uint64_t epoch = NextEpoch();
  for (size_t v : vertices) vertex_mark_[v] = epoch;

  Cqg cqg;
  cqg.vertices = std::move(vertices);
  for (size_t v : cqg.vertices) {
    for (size_t e : erg.IncidentEdges(v)) {
      if (edge_mark_[e] == epoch) continue;
      const ErgEdge& edge = erg.edge(e);
      if (vertex_mark_[edge.u] == epoch && vertex_mark_[edge.v] == epoch) {
        edge_mark_[e] = epoch;
        cqg.edge_indices.push_back(e);
      }
    }
  }
  // Ascending edge order, then sum — the same accumulation order as the
  // set-based InduceCqg, so total_benefit carries identical bits.
  std::sort(cqg.edge_indices.begin(), cqg.edge_indices.end());
  for (size_t e : cqg.edge_indices) {
    cqg.total_benefit += erg.edge(e).benefit;
  }
  return cqg;
}

bool ErgSelectSupport::Connected(const Erg& erg, const Cqg& cqg) const {
  if (cqg.vertices.size() <= 1) return true;
  EnsureScratch(erg.num_vertices(), erg.num_edges());
  // Two mark spaces in one pass: vertex_mark_ = "in set", edge_mark_ is
  // reused per-vertex as "visited" (edges and vertices share the epoch but
  // not the arrays, so the overload is safe; EnsureScratch sizes the edge
  // marks to cover the vertex count).
  uint64_t epoch = NextEpoch();
  for (size_t v : cqg.vertices) vertex_mark_[v] = epoch;

  uint64_t* visited = edge_mark_;  // indexed by vertex here
  size_t stack_size = 0;
  stack_[stack_size++] = cqg.vertices.front();
  visited[cqg.vertices.front()] = epoch;
  size_t reached = 1;
  while (stack_size > 0) {
    size_t v = stack_[--stack_size];
    for (size_t e : erg.IncidentEdges(v)) {
      const ErgEdge& edge = erg.edge(e);
      size_t other = edge.u == v ? edge.v : edge.u;
      if (vertex_mark_[other] == epoch && visited[other] != epoch) {
        visited[other] = epoch;
        ++reached;
        stack_[stack_size++] = other;
      }
    }
  }
  return reached == cqg.vertices.size();
}

}  // namespace visclean
