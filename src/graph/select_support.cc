#include "graph/select_support.h"

#include <algorithm>

namespace visclean {

void ErgSelectSupport::Refresh(const Erg& erg) {
  // Mirrors SortedEdgeOrder(AllEdgeIndices): every slot, liveness ignored —
  // selectors consume compacted snapshots, where every slot is live.
  edges_by_benefit_.resize(erg.num_edges());
  for (size_t i = 0; i < edges_by_benefit_.size(); ++i) {
    edges_by_benefit_[i] = i;
  }
  std::sort(edges_by_benefit_.begin(), edges_by_benefit_.end(),
            [&](size_t a, size_t b) {
              if (erg.edge(a).benefit != erg.edge(b).benefit) {
                return erg.edge(a).benefit > erg.edge(b).benefit;
              }
              return a < b;
            });

  // The benefit sequence along edges_by_benefit_ is the value-sorted
  // descending sequence B&B built, so these prefix sums accumulate in the
  // same floating-point order.
  benefit_prefix_.assign(erg.num_edges() + 1, 0.0);
  for (size_t i = 0; i < edges_by_benefit_.size(); ++i) {
    benefit_prefix_[i + 1] =
        benefit_prefix_[i] +
        std::max(0.0, erg.edge(edges_by_benefit_[i]).benefit);
  }

  if (vertex_mark_.size() < erg.num_vertices()) {
    vertex_mark_.assign(erg.num_vertices(), 0);
  }
  if (edge_mark_.size() < erg.num_edges()) {
    edge_mark_.assign(erg.num_edges(), 0);
  }
  primed_ = true;
}

void ErgSelectSupport::Clear() {
  primed_ = false;
  edges_by_benefit_.clear();
  benefit_prefix_.clear();
  epoch_ = 0;
  vertex_mark_.clear();
  edge_mark_.clear();
  stack_.clear();
}

uint64_t ErgSelectSupport::NextEpoch() const {
  // A fresh support starts at epoch 0 with zeroed marks; the first call
  // moves to 1, so a stale zero mark can never read as "in set".
  return ++epoch_;
}

Cqg ErgSelectSupport::Induce(const Erg& erg, std::vector<size_t> vertices) const {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  if (vertex_mark_.size() < erg.num_vertices()) {
    vertex_mark_.resize(erg.num_vertices(), 0);
  }
  if (edge_mark_.size() < erg.num_edges()) {
    edge_mark_.resize(erg.num_edges(), 0);
  }
  uint64_t epoch = NextEpoch();
  for (size_t v : vertices) vertex_mark_[v] = epoch;

  Cqg cqg;
  cqg.vertices = std::move(vertices);
  for (size_t v : cqg.vertices) {
    for (size_t e : erg.IncidentEdges(v)) {
      if (edge_mark_[e] == epoch) continue;
      const ErgEdge& edge = erg.edge(e);
      if (vertex_mark_[edge.u] == epoch && vertex_mark_[edge.v] == epoch) {
        edge_mark_[e] = epoch;
        cqg.edge_indices.push_back(e);
      }
    }
  }
  // Ascending edge order, then sum — the same accumulation order as the
  // set-based InduceCqg, so total_benefit carries identical bits.
  std::sort(cqg.edge_indices.begin(), cqg.edge_indices.end());
  for (size_t e : cqg.edge_indices) {
    cqg.total_benefit += erg.edge(e).benefit;
  }
  return cqg;
}

bool ErgSelectSupport::Connected(const Erg& erg, const Cqg& cqg) const {
  if (cqg.vertices.size() <= 1) return true;
  if (vertex_mark_.size() < erg.num_vertices()) {
    vertex_mark_.resize(erg.num_vertices(), 0);
  }
  if (edge_mark_.size() < erg.num_edges()) {
    edge_mark_.resize(erg.num_edges(), 0);
  }
  // Two mark spaces in one pass: vertex_mark_ = "in set", edge_mark_ is
  // reused per-vertex as "visited" (edges and vertices share the epoch but
  // not the arrays, so the overload is safe).
  uint64_t epoch = NextEpoch();
  for (size_t v : cqg.vertices) vertex_mark_[v] = epoch;

  std::vector<uint64_t>& visited = edge_mark_;  // indexed by vertex here
  if (visited.size() < erg.num_vertices()) {
    visited.resize(erg.num_vertices(), 0);
  }
  stack_.clear();
  stack_.push_back(cqg.vertices.front());
  visited[cqg.vertices.front()] = epoch;
  size_t reached = 1;
  while (!stack_.empty()) {
    size_t v = stack_.back();
    stack_.pop_back();
    for (size_t e : erg.IncidentEdges(v)) {
      const ErgEdge& edge = erg.edge(e);
      size_t other = edge.u == v ? edge.v : edge.u;
      if (vertex_mark_[other] == epoch && visited[other] != epoch) {
        visited[other] = epoch;
        ++reached;
        stack_.push_back(other);
      }
    }
  }
  return reached == cqg.vertices.size();
}

}  // namespace visclean
