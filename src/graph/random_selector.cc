#include "graph/random_selector.h"

#include <set>
#include <vector>

namespace visclean {

Cqg RandomSelector::Select(const ErgView& view, size_t k) {
  const Erg& erg = view.graph();
  if (erg.num_edges() == 0) return {};
  const ErgEdge& seed = erg.edge(static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(erg.num_edges()) - 1)));
  std::set<size_t> in_set = {seed.u, seed.v};

  while (in_set.size() < k) {
    // Frontier: vertices adjacent to the current set.
    std::set<size_t> frontier;
    for (size_t v : in_set) {
      for (size_t e : erg.IncidentEdges(v)) {
        const ErgEdge& edge = erg.edge(e);
        size_t other = edge.u == v ? edge.v : edge.u;
        if (!in_set.count(other)) frontier.insert(other);
      }
    }
    if (frontier.empty()) break;
    std::vector<size_t> choices(frontier.begin(), frontier.end());
    in_set.insert(choices[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))]);
  }
  return InduceCqg(view, {in_set.begin(), in_set.end()});
}

}  // namespace visclean
