#include "graph/cqg.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "graph/select_support.h"

namespace visclean {

std::string Cqg::Fingerprint() const {
  std::string out = "V[";
  std::vector<size_t> vs = vertices;
  std::sort(vs.begin(), vs.end());
  for (size_t v : vs) {
    out += std::to_string(v);
    out += ',';
  }
  out += "] E[";
  std::vector<size_t> es = edge_indices;
  std::sort(es.begin(), es.end());
  for (size_t e : es) {
    out += std::to_string(e);
    out += ',';
  }
  out += "] B=";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", total_benefit);  // exact bits
  out += buf;
  return out;
}

Cqg InduceCqg(const Erg& erg, std::vector<size_t> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  Cqg cqg;
  cqg.vertices = std::move(vertices);
  std::set<size_t> in_set(cqg.vertices.begin(), cqg.vertices.end());
  std::set<size_t> edge_set;
  for (size_t v : cqg.vertices) {
    for (size_t e : erg.IncidentEdges(v)) {
      const ErgEdge& edge = erg.edge(e);
      if (in_set.count(edge.u) && in_set.count(edge.v)) edge_set.insert(e);
    }
  }
  for (size_t e : edge_set) {
    cqg.edge_indices.push_back(e);
    cqg.total_benefit += erg.edge(e).benefit;
  }
  return cqg;
}

bool IsCqgConnected(const Erg& erg, const Cqg& cqg) {
  if (cqg.vertices.size() <= 1) return true;
  std::set<size_t> in_set(cqg.vertices.begin(), cqg.vertices.end());
  std::set<size_t> visited;
  std::vector<size_t> stack = {cqg.vertices.front()};
  visited.insert(cqg.vertices.front());
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t e : erg.IncidentEdges(v)) {
      const ErgEdge& edge = erg.edge(e);
      size_t other = edge.u == v ? edge.v : edge.u;
      if (in_set.count(other) && !visited.count(other)) {
        visited.insert(other);
        stack.push_back(other);
      }
    }
  }
  return visited.size() == cqg.vertices.size();
}

Cqg InduceCqg(const ErgView& view, std::vector<size_t> vertices) {
  const ErgSelectSupport* support = view.support();
  if (support != nullptr && support->primed()) {
    return support->Induce(view.graph(), std::move(vertices));
  }
  return InduceCqg(view.graph(), std::move(vertices));
}

bool IsCqgConnected(const ErgView& view, const Cqg& cqg) {
  const ErgSelectSupport* support = view.support();
  if (support != nullptr && support->primed()) {
    return support->Connected(view.graph(), cqg);
  }
  return IsCqgConnected(view.graph(), cqg);
}

}  // namespace visclean
