#include "graph/exact_selector.h"

#include <vector>

namespace visclean {

namespace {

// Advances `combo` to the next k-combination of [0, n); false at the end.
bool NextCombination(std::vector<size_t>& combo, size_t n) {
  size_t k = combo.size();
  for (size_t i = k; i-- > 0;) {
    if (combo[i] < n - k + i) {
      ++combo[i];
      for (size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

Cqg ExactSelector::Select(const ErgView& view, size_t k) {
  const Erg& erg = view.graph();
  const size_t n = erg.num_vertices();
  if (n == 0 || erg.num_edges() == 0) return {};
  if (k > n) k = n;
  if (k == 0) return {};

  Cqg best;
  double best_benefit = -1.0;

  std::vector<size_t> combo(k);
  for (size_t i = 0; i < k; ++i) combo[i] = i;
  do {
    Cqg cqg = InduceCqg(view, combo);
    if (cqg.total_benefit > best_benefit && IsCqgConnected(view, cqg)) {
      best_benefit = cqg.total_benefit;
      best = std::move(cqg);
    }
  } while (NextCombination(combo, n));
  return best;
}

}  // namespace visclean
