#include "graph/gss.h"

#include <algorithm>
#include <set>
#include <vector>

#include "graph/select_support.h"

namespace visclean {

namespace {

constexpr size_t kNoSet = static_cast<size_t>(-1);

// Fallback when no vertex set ever reaches size k (sparse/fragmented ERG):
// grow greedily from the best edge, always absorbing the neighbor that adds
// the most induced benefit. Guarantees the session still gets a (smaller or
// equal) connected question.
Cqg GreedyGrow(const ErgView& erg, size_t k,
               const std::vector<size_t>& edge_order) {
  if (edge_order.empty()) return {};
  const ErgEdge& seed = erg.edge(edge_order.front());
  std::set<size_t> in_set = {seed.u, seed.v};
  while (in_set.size() < k) {
    size_t best_vertex = Erg::kNoVertex;
    double best_gain = 0.0;
    for (size_t v : in_set) {
      for (size_t e : erg.IncidentEdges(v)) {
        const ErgEdge& edge = erg.edge(e);
        size_t other = edge.u == v ? edge.v : edge.u;
        if (in_set.count(other)) continue;
        // Gain = total benefit of edges from `other` into the current set.
        double gain = 0.0;
        for (size_t e2 : erg.IncidentEdges(other)) {
          const ErgEdge& edge2 = erg.edge(e2);
          size_t far = edge2.u == other ? edge2.v : edge2.u;
          if (in_set.count(far)) gain += edge2.benefit;
        }
        if (best_vertex == Erg::kNoVertex || gain > best_gain) {
          best_vertex = other;
          best_gain = gain;
        }
      }
    }
    if (best_vertex == Erg::kNoVertex) break;  // component exhausted
    in_set.insert(best_vertex);
  }
  return InduceCqg(erg, {in_set.begin(), in_set.end()});
}

// The core of Algorithm 2, shared by GSS and GSS+. `edge_order` holds the
// (possibly pruned) edge indices sorted by benefit descending;
// `early_stop_subgraphs` = 0 disables early termination.
Cqg RunGss(const ErgView& erg, size_t k,
           const std::vector<size_t>& edge_order,
           size_t early_stop_subgraphs) {
  if (k < 2) k = 2;

  std::vector<size_t> membership(erg.num_vertices(), kNoSet);  // m[v]
  std::vector<std::vector<size_t>> sets;                       // C

  Cqg best;
  double best_benefit = -1.0;
  size_t completed = 0;

  auto evaluate = [&](const std::vector<size_t>& vertex_set) {
    Cqg cqg = InduceCqg(erg, vertex_set);
    if (cqg.total_benefit > best_benefit) {
      best = std::move(cqg);
      best_benefit = best.total_benefit;
    }
    ++completed;
  };

  for (size_t e : edge_order) {
    const ErgEdge& edge = erg.edge(e);
    size_t v = edge.u, w = edge.v;

    size_t target;
    if (membership[v] == kNoSet && membership[w] == kNoSet) {
      // Case 1: brand-new set {v, w}.
      sets.push_back({v, w});
      membership[v] = membership[w] = sets.size() - 1;
      target = sets.size() - 1;
    } else if (membership[v] == membership[w]) {
      continue;  // both endpoints already share a set; nothing to add
    } else {
      // Cases 2 & 3: attach the free (or other-set) endpoint to the
      // anchored one.
      size_t v_from, v_to;
      if (membership[v] == kNoSet) {
        v_from = v;
        v_to = w;
      } else {
        v_from = w;
        v_to = v;
      }
      target = membership[v_to];
      std::vector<size_t>& set = sets[target];
      if (std::find(set.begin(), set.end(), v_from) == set.end()) {
        set.push_back(v_from);
      }
      membership[v_from] = target;
    }

    if (sets[target].size() == k) {
      evaluate(sets[target]);
      // Dissolve: members become free again (Algorithm 2 line 22).
      for (size_t u : sets[target]) {
        if (membership[u] == target) membership[u] = kNoSet;
      }
      sets[target].clear();
      if (early_stop_subgraphs > 0 && completed >= early_stop_subgraphs) {
        break;
      }
    }
  }

  if (best_benefit < 0.0) return GreedyGrow(erg, k, edge_order);
  return best;
}

std::vector<size_t> SortedEdgeOrder(const Erg& erg,
                                    const std::vector<size_t>& candidates) {
  std::vector<size_t> order = candidates;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (erg.edge(a).benefit != erg.edge(b).benefit) {
      return erg.edge(a).benefit > erg.edge(b).benefit;
    }
    return a < b;
  });
  return order;
}

std::vector<size_t> AllEdgeIndices(const Erg& erg) {
  std::vector<size_t> all(erg.num_edges());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// The benefit-descending ordering of all edges: the maintained one when the
// view carries a refreshed support (identical by construction — see
// graph/select_support.h), else built per call.
std::vector<size_t> BenefitOrder(const ErgView& view) {
  const ErgSelectSupport* support = view.support();
  if (support != nullptr && support->primed()) {
    return support->edges_by_benefit();
  }
  const Erg& erg = view.graph();
  return SortedEdgeOrder(erg, AllEdgeIndices(erg));
}

}  // namespace

Cqg GssSelector::Select(const ErgView& view, size_t k) {
  if (view.num_edges() == 0) return {};
  return RunGss(view, k, BenefitOrder(view), /*early_stop_subgraphs=*/0);
}

Cqg GssPlusSelector::Select(const ErgView& view, size_t k) {
  const Erg& erg = view.graph();
  if (erg.num_edges() == 0) return {};
  // Optimization 1: keep only edges in the uncertain band — they carry the
  // training signal; near-certain edges are answered by the machine.
  // Filtering the maintained benefit order preserves its (benefit desc,
  // index asc) sort, so the result equals sorting the kept set directly.
  std::vector<size_t> order = BenefitOrder(view);
  std::vector<size_t> kept;
  kept.reserve(order.size());
  for (size_t e : order) {
    const ErgEdge& edge = erg.edge(e);
    bool tuple_uncertain = edge.p_tuple >= options_.prune_low &&
                           edge.p_tuple <= options_.prune_high;
    bool attr_uncertain = edge.has_attr && edge.p_attr >= options_.prune_low &&
                          edge.p_attr <= options_.prune_high;
    if (tuple_uncertain || attr_uncertain) kept.push_back(e);
  }
  if (kept.empty()) kept = order;  // never go silent
  // Optimization 2: early termination after m candidate subgraphs.
  return RunGss(view, k, kept, options_.early_stop_subgraphs);
}

}  // namespace visclean
