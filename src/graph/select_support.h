// Maintained CQG selection scaffolding, hoisted out of the selectors.
//
// Every selector used to rebuild the same per-call structures from the ERG:
// GSS/GSS+ a benefit-sorted edge ordering, B&B the descending-benefit prefix
// sums behind its optimistic bound, and all of them fresh std::set-based
// membership/visited sets inside InduceCqg / IsCqgConnected. ErgCache now
// owns one ErgSelectSupport, refreshes it once per iteration against the
// published snapshot, and hands it to selectors through ErgView — so a
// selector call (and the session's shrinking-k fallback re-calls) does O(k)
// induction with epoch-stamped marks instead of per-call rebuilds.
//
// Bit-identity contract: each structure reproduces the exact construction
// the selectors used inline —
//  * edges_by_benefit(): every edge slot, (benefit desc, index asc) — the
//    order SortedEdgeOrder(AllEdgeIndices) produced;
//  * benefit_prefix(): prefix sums of max(0, benefit) over the
//    value-sorted-descending benefit sequence; the support order's benefit
//    sequence is that same descending sequence, so the floating-point sums
//    are performed in the identical order B&B used;
//  * Induce()/Connected(): collected edges are sorted ascending and benefit
//    is summed in ascending edge-index order, matching the std::set
//    iteration of the legacy InduceCqg.
#ifndef VISCLEAN_GRAPH_SELECT_SUPPORT_H_
#define VISCLEAN_GRAPH_SELECT_SUPPORT_H_

#include <cstdint>
#include <vector>

#include "graph/cqg.h"
#include "graph/erg.h"

namespace visclean {

class Arena;

/// \brief Per-iteration selection support over one published ERG snapshot.
///
/// Refresh() reuses vector capacity across iterations; Induce()/Connected()
/// use mutable epoch-stamped scratch, so one instance serves one reader at a
/// time (each session owns its own, inside its ErgCache; the published view
/// is still free to be read concurrently — the scratch lives here, not in
/// the graph).
class ErgSelectSupport {
 public:
  /// Rebuilds the orderings and sizes the scratch for `erg`. The support is
  /// only valid for the exact graph (slots + benefits) it was refreshed on.
  /// With `arena` set, the mark/stack scratch is carved from it instead of
  /// the heap; the spans are zeroed here, so marks from a previous epoch of
  /// the (reset) arena can never read as current. The spans die with the
  /// arena epoch, so the support must be Refresh()ed again — as it already
  /// is, once per iteration — before the next Induce()/Connected().
  void Refresh(const Erg& erg, Arena* arena = nullptr);

  void Clear();

  bool primed() const { return primed_; }

  /// Every edge slot index, sorted (benefit desc, index asc).
  const std::vector<size_t>& edges_by_benefit() const {
    return edges_by_benefit_;
  }

  /// benefit_prefix()[j] = sum of max(0, benefit) of the j highest-benefit
  /// edge slots (size num_edges + 1, [0] = 0).
  const std::vector<double>& benefit_prefix() const { return benefit_prefix_; }

  /// InduceCqg without per-call set allocations: O(sum of vertex degrees)
  /// with epoch marks. Identical output to InduceCqg(erg, vertices).
  Cqg Induce(const Erg& erg, std::vector<size_t> vertices) const;

  /// IsCqgConnected without per-call set allocations.
  bool Connected(const Erg& erg, const Cqg& cqg) const;

 private:
  uint64_t NextEpoch() const;
  /// Guarantees zero-initialized mark/stack scratch for `vertices` vertex
  /// slots and `edges` edge slots (edge marks double as a per-vertex visited
  /// array in Connected, so the edge capacity also covers the vertices).
  /// Falls back to heap storage when the refreshed capacity is exceeded.
  void EnsureScratch(size_t vertices, size_t edges) const;

  bool primed_ = false;
  std::vector<size_t> edges_by_benefit_;
  std::vector<double> benefit_prefix_;

  // Epoch-stamped scratch: mark[x] == epoch_ means "in the current call's
  // set"; bumping the epoch clears every mark in O(1). The pointers target
  // either the heap stores below or arena spans handed to Refresh().
  mutable uint64_t epoch_ = 0;
  mutable uint64_t* vertex_mark_ = nullptr;
  mutable uint64_t* edge_mark_ = nullptr;
  mutable size_t* stack_ = nullptr;
  mutable size_t vertex_cap_ = 0;
  mutable size_t edge_cap_ = 0;
  mutable std::vector<uint64_t> vertex_mark_store_;
  mutable std::vector<uint64_t> edge_mark_store_;
  mutable std::vector<size_t> stack_store_;
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_SELECT_SUPPORT_H_
