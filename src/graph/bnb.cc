#include "graph/bnb.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/strings.h"
#include "graph/select_support.h"

namespace visclean {

namespace {

// Search state shared across the recursion.
struct BnbState {
  const Erg* erg = nullptr;
  size_t k = 0;
  double alpha = 1.0;
  size_t max_expansions = 0;
  size_t expansions = 0;
  bool stopped = false;

  // Prefix sums of all edge benefits sorted descending; prefix[j] = sum of
  // the j largest. Used by the optimistic bound.
  std::vector<double> prefix;

  std::vector<size_t> current;      // V_sub
  std::vector<bool> in_sub;         // vertex in V_sub
  std::vector<bool> seen;           // in V_sub or ever placed in an extension
  double current_benefit = 0.0;
  size_t current_edges = 0;

  std::vector<size_t> best_vertices;
  double best_benefit = -1.0;
  size_t best_size = 0;

  void Consider() {
    // Prefer larger subgraphs; among equal sizes, larger benefit.
    if (current.size() > best_size ||
        (current.size() == best_size && current_benefit > best_benefit)) {
      best_vertices = current;
      best_benefit = current_benefit;
      best_size = current.size();
    }
  }

  double Bound() const {
    size_t max_edges = k * (k - 1) / 2;
    size_t addable = max_edges > current_edges ? max_edges - current_edges : 0;
    addable = std::min(addable, prefix.size() - 1);
    return current_benefit + prefix[addable];
  }
};

void Extend(BnbState* s, std::vector<size_t> extension) {
  if (s->stopped) return;
  if (s->max_expansions > 0 && ++s->expansions > s->max_expansions) {
    s->stopped = true;
    return;
  }
  if (s->current.size() == s->k || extension.empty()) {
    s->Consider();
    return;
  }
  // Prune: even the most optimistic completion cannot beat alpha-scaled
  // incumbent (only once a full-size incumbent exists).
  if (s->best_size == s->k && s->Bound() <= s->alpha * s->best_benefit) {
    return;
  }

  while (!extension.empty() && !s->stopped) {
    size_t u = extension.back();
    extension.pop_back();

    // Add u to the subgraph.
    double added_benefit = 0.0;
    size_t added_edges = 0;
    for (size_t e : s->erg->IncidentEdges(u)) {
      const ErgEdge& edge = s->erg->edge(e);
      size_t other = edge.u == u ? edge.v : edge.u;
      if (s->in_sub[other]) {
        added_benefit += edge.benefit;
        ++added_edges;
      }
    }
    s->current.push_back(u);
    s->in_sub[u] = true;
    s->current_benefit += added_benefit;
    s->current_edges += added_edges;

    // New extension: remaining candidates plus u's exclusive neighbors.
    std::vector<size_t> next_extension = extension;
    std::vector<size_t> newly_seen;
    for (size_t e : s->erg->IncidentEdges(u)) {
      const ErgEdge& edge = s->erg->edge(e);
      size_t w = edge.u == u ? edge.v : edge.u;
      if (!s->seen[w]) {
        s->seen[w] = true;
        newly_seen.push_back(w);
        next_extension.push_back(w);
      }
    }
    Extend(s, std::move(next_extension));

    // Backtrack.
    for (size_t w : newly_seen) s->seen[w] = false;
    s->current.pop_back();
    s->in_sub[u] = false;
    s->current_benefit -= added_benefit;
    s->current_edges -= added_edges;
  }
  // Exhausting the extension with a sub-size subgraph: record as fallback.
  if (s->current.size() < s->k) s->Consider();
}

}  // namespace

Cqg BnbSelector::Select(const ErgView& view, size_t k) {
  const Erg& erg = view.graph();
  last_expansions_ = 0;
  if (erg.num_edges() == 0 || k < 2) return {};

  BnbState state;
  state.erg = &erg;
  state.k = k;
  state.alpha = options_.alpha;
  state.max_expansions = options_.max_expansions;
  state.in_sub.assign(erg.num_vertices(), false);
  state.seen.assign(erg.num_vertices(), false);

  // Optimistic-bound prefix sums: take the maintained ones when the view
  // carries a refreshed support (the support's benefit sequence is the same
  // value-sorted descending sequence, so the sums carry identical bits),
  // else build them per call.
  const ErgSelectSupport* support = view.support();
  if (support != nullptr && support->primed()) {
    state.prefix = support->benefit_prefix();
  } else {
    std::vector<double> benefits;
    benefits.reserve(erg.num_edges());
    for (const ErgEdge& e : erg.edges()) benefits.push_back(e.benefit);
    std::sort(benefits.begin(), benefits.end(), std::greater<double>());
    state.prefix.resize(benefits.size() + 1, 0.0);
    for (size_t i = 0; i < benefits.size(); ++i) {
      state.prefix[i + 1] = state.prefix[i] + std::max(0.0, benefits[i]);
    }
  }

  // ESU root loop: only subgraphs whose minimum vertex is the root are
  // enumerated from that root, so each connected set is visited once.
  for (size_t v = 0; v < erg.num_vertices() && !state.stopped; ++v) {
    if (erg.IncidentEdges(v).empty()) continue;
    std::fill(state.seen.begin(), state.seen.end(), false);
    // Mark all vertices <= v as seen so extensions stay above the root.
    for (size_t u = 0; u <= v; ++u) state.seen[u] = true;
    state.current = {v};
    state.in_sub[v] = true;
    state.current_benefit = 0.0;
    state.current_edges = 0;

    std::vector<size_t> extension;
    for (size_t e : erg.IncidentEdges(v)) {
      const ErgEdge& edge = erg.edge(e);
      size_t w = edge.u == v ? edge.v : edge.u;
      if (!state.seen[w]) {
        state.seen[w] = true;
        extension.push_back(w);
      }
    }
    Extend(&state, std::move(extension));
    state.in_sub[v] = false;
  }

  last_expansions_ = state.expansions;
  if (state.best_benefit < 0.0) return {};
  return InduceCqg(view, state.best_vertices);
}

std::string BnbSelector::name() const {
  if (options_.alpha == 1.0) return "B&B";
  return StrFormat("%g-B&B", options_.alpha);
}

}  // namespace visclean
