// Naive exact optimal-CQG search by exhaustive enumeration of all k-vertex
// subsets. Exponential; exists to cross-validate GSS/B&B in tests on tiny
// graphs (the "straightforward approach" Section V-B describes).
#ifndef VISCLEAN_GRAPH_EXACT_SELECTOR_H_
#define VISCLEAN_GRAPH_EXACT_SELECTOR_H_

#include "graph/selector.h"

namespace visclean {

/// \brief Enumerates every C(|V|, k) vertex subset, keeps the connected one
/// with maximum induced benefit. Only usable for very small ERGs.
class ExactSelector : public CqgSelector {
 public:
  Cqg Select(const ErgView& erg, size_t k) override;
  std::string name() const override { return "Exact"; }
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_EXACT_SELECTOR_H_
