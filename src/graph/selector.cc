#include "graph/selector.h"

#include <cstdlib>

#include "graph/bnb.h"
#include "graph/exact_selector.h"
#include "graph/gss.h"
#include "graph/random_selector.h"

namespace visclean {

Result<std::unique_ptr<CqgSelector>> MakeSelector(const std::string& name,
                                                  uint64_t seed) {
  if (name == "gss" || name == "GSS") {
    return std::unique_ptr<CqgSelector>(new GssSelector());
  }
  if (name == "gss+" || name == "GSS+") {
    return std::unique_ptr<CqgSelector>(new GssPlusSelector());
  }
  if (name == "bnb" || name == "B&B" || name == "b&b") {
    // Factory-made B&B carries a practical expansion cap so sessions and
    // benches terminate; construct BnbSelector directly for the unbounded
    // exact search.
    BnbOptions options;
    options.max_expansions = 2000000;
    return std::unique_ptr<CqgSelector>(new BnbSelector(options));
  }
  if (name == "random" || name == "Random") {
    return std::unique_ptr<CqgSelector>(new RandomSelector(seed));
  }
  if (name == "exact" || name == "Exact") {
    return std::unique_ptr<CqgSelector>(new ExactSelector());
  }
  // "<alpha>-bnb" (e.g. "5-bnb", "10-bnb"): alpha-approximate B&B.
  size_t dash = name.find("-");
  if (dash != std::string::npos) {
    std::string suffix = name.substr(dash + 1);
    if (suffix == "bnb" || suffix == "B&B" || suffix == "b&b") {
      double alpha = std::strtod(name.c_str(), nullptr);
      if (alpha > 0.0) {
        BnbOptions options;
        options.alpha = alpha;
        options.max_expansions = 2000000;
        return std::unique_ptr<CqgSelector>(new BnbSelector(options));
      }
    }
  }
  return Status::InvalidArgument("unknown selector '" + name + "'");
}

}  // namespace visclean
