#include "graph/selector.h"

#include "graph/selector_registry.h"

namespace visclean {

Result<std::unique_ptr<CqgSelector>> MakeSelector(const std::string& name,
                                                  uint64_t seed) {
  return SelectorRegistry::Instance().Create(name, seed);
}

}  // namespace visclean
