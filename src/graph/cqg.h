// The Composite Question Graph of Definition 2.2: a connected induced
// subgraph of the ERG, presented to the user as one question.
#ifndef VISCLEAN_GRAPH_CQG_H_
#define VISCLEAN_GRAPH_CQG_H_

#include <string>
#include <vector>

#include "graph/erg.h"

namespace visclean {

/// \brief A CQG: the selected vertex set plus the induced edges.
struct Cqg {
  std::vector<size_t> vertices;      ///< ERG vertex indices, ascending
  std::vector<size_t> edge_indices;  ///< ERG edge indices induced by vertices
  double total_benefit = 0.0;        ///< sum of induced edges' benefit

  bool empty() const { return vertices.empty(); }

  /// Canonical textual form of the selection: the sorted vertex and edge
  /// index lists plus the exact bits of total_benefit (hex float). Two
  /// selections compare equal iff their fingerprints do — the differential
  /// suite uses this to assert that incremental and full-recompute benefit
  /// paths drive identical question choices.
  std::string Fingerprint() const;
};

/// \brief Builds the induced CQG for a vertex set: collects every ERG edge
/// with both endpoints in the set and sums benefits. Vertex list is
/// deduplicated and sorted.
Cqg InduceCqg(const Erg& erg, std::vector<size_t> vertices);

/// True when the induced subgraph on `cqg.vertices` is connected (vacuously
/// true for <= 1 vertex).
bool IsCqgConnected(const Erg& erg, const Cqg& cqg);

/// View-routed variants: delegate to the view's maintained selection
/// support when present (allocation-free epoch-marked induction; see
/// graph/select_support.h), otherwise to the set-based forms above.
/// Bit-identical either way.
Cqg InduceCqg(const ErgView& view, std::vector<size_t> vertices);
bool IsCqgConnected(const ErgView& view, const Cqg& cqg);

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_CQG_H_
