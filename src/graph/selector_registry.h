// Self-registering registry of CQG-selection algorithms.
//
// Selectors register declaratively — an exact-name entry per alias, or a
// pattern entry for parameterized families like "<alpha>-bnb" — via static
// SelectorRegistrar objects; MakeSelector (graph/selector.h) is a thin
// wrapper over Create(). The built-in selectors register themselves in
// selector_registry.cc (kept there, not in each selector's .cc, so static
// library dead-stripping can never drop a registration); out-of-tree
// selectors add their own static SelectorRegistrar and become reachable by
// name without touching any factory if-chain.
#ifndef VISCLEAN_GRAPH_SELECTOR_REGISTRY_H_
#define VISCLEAN_GRAPH_SELECTOR_REGISTRY_H_

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/selector.h"

namespace visclean {

/// \brief Process-wide name -> selector-factory registry.
class SelectorRegistry {
 public:
  /// Builds a selector; `seed` is forwarded (only randomized selectors
  /// consume it).
  using Factory =
      std::function<Result<std::unique_ptr<CqgSelector>>(uint64_t seed)>;
  /// Family factory: receives the full requested name (e.g. "5-bnb") and
  /// either builds the selector or returns a descriptive error (malformed
  /// parameters must not fall through to "unknown selector").
  using PatternFactory = std::function<Result<std::unique_ptr<CqgSelector>>(
      const std::string& name, uint64_t seed)>;
  /// Whether a family claims the requested name (syntax only, not validity).
  using PatternMatcher = std::function<bool(const std::string& name)>;

  /// The process-wide instance (constructed on first use; safe to call from
  /// static registrar constructors).
  static SelectorRegistry& Instance();

  /// Registers an exact (case-sensitive) name. Later registrations of the
  /// same name win, so tests can shadow a built-in.
  void Register(const std::string& name, Factory factory);
  /// Registers a name family. Families are consulted in registration order
  /// after exact names.
  void RegisterPattern(const std::string& label, PatternMatcher matches,
                       PatternFactory factory);

  /// Resolves `name`: exact entries first, then the first matching family.
  /// InvalidArgument when nothing claims the name or a family rejects its
  /// parameters.
  Result<std::unique_ptr<CqgSelector>> Create(const std::string& name,
                                              uint64_t seed) const;

  /// All registered exact names (sorted; families are not enumerable).
  std::vector<std::string> ExactNames() const;

 private:
  SelectorRegistry() = default;

  struct Pattern {
    std::string label;
    PatternMatcher matches;
    PatternFactory factory;
  };

  std::map<std::string, Factory> factories_;
  std::vector<Pattern> patterns_;
};

/// \brief RAII helper: declare a namespace-scope `const SelectorRegistrar`
/// to register a selector at static-initialization time.
class SelectorRegistrar {
 public:
  /// Registers `factory` under every alias in `names`.
  SelectorRegistrar(std::initializer_list<const char*> names,
                    SelectorRegistry::Factory factory);
  /// Registers a name family.
  SelectorRegistrar(const char* label, SelectorRegistry::PatternMatcher matches,
                    SelectorRegistry::PatternFactory factory);
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_SELECTOR_REGISTRY_H_
