// The Errors-and-Repairs Graph of Definition 2.1.
//
// Vertices are tuples that participate in at least one question; edges are
// possible tuple- or attribute-level duplicate pairs carrying the weight
// pair (p^t, p^a); vertex labels mark outlier (O) and missing-value (M)
// questions. Edge `benefit` is filled in by the benefit model before
// selection.
#ifndef VISCLEAN_GRAPH_ERG_H_
#define VISCLEAN_GRAPH_ERG_H_

#include <optional>
#include <vector>

#include "clean/question.h"

namespace visclean {

/// \brief One ERG vertex: a tuple plus its optional M-/O-questions.
struct ErgVertex {
  size_t row = 0;  ///< table row id this vertex represents
  std::optional<MQuestion> missing;
  std::optional<OQuestion> outlier;
};

/// \brief One ERG edge between vertex indices u < v.
struct ErgEdge {
  size_t u = 0;
  size_t v = 0;
  double p_tuple = 0.0;  ///< tuple-level match probability (T-question)
  double p_attr = 0.0;   ///< attribute-level match probability (A-question)
  bool has_attr = false; ///< X is categorical and the spellings differ
  AQuestion attr_question;  ///< valid when has_attr
  double benefit = 0.0;  ///< estimated benefit b (Definition 5.1)
};

/// \brief The full graph. Vertices/edges are stored by index.
///
/// Adjacency is maintained eagerly by AddVertex/AddEdge — never lazily from
/// a const accessor — so concurrent IncidentEdges calls from selector code
/// running on the thread pool are read-only and race-free.
class Erg {
 public:
  Erg() = default;

  /// Adds a vertex; returns its index.
  size_t AddVertex(ErgVertex vertex);
  /// Adds an edge (u and v must be existing vertex indices, u != v).
  /// Returns the edge index.
  size_t AddEdge(ErgEdge edge);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const ErgVertex& vertex(size_t i) const { return vertices_[i]; }
  ErgVertex& vertex(size_t i) { return vertices_[i]; }
  const ErgEdge& edge(size_t i) const { return edges_[i]; }
  ErgEdge& edge(size_t i) { return edges_[i]; }
  const std::vector<ErgEdge>& edges() const { return edges_; }

  /// Edge indices incident to vertex i, ascending. Safe to call from any
  /// number of threads concurrently (no mutation, not even lazily).
  const std::vector<size_t>& IncidentEdges(size_t i) const {
    return adjacency_[i];
  }

  /// Vertex index for a table row, or npos when absent.
  static constexpr size_t kNoVertex = static_cast<size_t>(-1);
  size_t VertexOfRow(size_t row) const;

 private:
  std::vector<ErgVertex> vertices_;
  std::vector<ErgEdge> edges_;
  std::vector<std::vector<size_t>> adjacency_;  // parallel to vertices_
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_ERG_H_
