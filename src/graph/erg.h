// The Errors-and-Repairs Graph of Definition 2.1.
//
// Vertices are tuples that participate in at least one question; edges are
// possible tuple- or attribute-level duplicate pairs carrying the weight
// pair (p^t, p^a); vertex labels mark outlier (O) and missing-value (M)
// questions. Edge `benefit` is filled in by the benefit model before
// selection.
//
// The graph supports two usage styles:
//  * build-once (the kFull assembly path and most tests): AddVertex/AddEdge
//    only, every slot stays live;
//  * maintained (core/erg_cache.h): RetractEdge/RetractVertex tombstone
//    slots across iterations, and Compacted() emits the canonical dense
//    snapshot — live vertices sorted by row ascending, live edges sorted by
//    (row_u, row_v) — that selectors consume. The canonical form is
//    insertion-order independent, which is what makes the incremental and
//    full assembly paths bit-identical.
#ifndef VISCLEAN_GRAPH_ERG_H_
#define VISCLEAN_GRAPH_ERG_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "clean/question.h"

namespace visclean {

/// \brief One ERG vertex: a tuple plus its optional M-/O-questions.
struct ErgVertex {
  size_t row = 0;  ///< table row id this vertex represents
  std::optional<MQuestion> missing;
  std::optional<OQuestion> outlier;
};

/// \brief One ERG edge between vertex indices u < v.
struct ErgEdge {
  size_t u = 0;
  size_t v = 0;
  double p_tuple = 0.0;  ///< tuple-level match probability (T-question)
  double p_attr = 0.0;   ///< attribute-level match probability (A-question)
  bool has_attr = false; ///< X is categorical and the spellings differ
  AQuestion attr_question;  ///< valid when has_attr
  double benefit = 0.0;  ///< estimated benefit b (Definition 5.1)
};

/// \brief The full graph. Vertices/edges are stored by index.
///
/// Adjacency is maintained eagerly by AddVertex/AddEdge/RetractEdge — never
/// lazily from a const accessor — so concurrent IncidentEdges calls from
/// selector code running on the thread pool are read-only and race-free.
class Erg {
 public:
  Erg() = default;

  /// Adds a vertex; returns its index. The row-to-vertex map points at the
  /// new slot (re-adding a retracted row binds the row to the fresh slot).
  size_t AddVertex(ErgVertex vertex);
  /// Adds an edge (u and v must be live vertex indices, u != v).
  /// Returns the edge index.
  size_t AddEdge(ErgEdge edge);

  /// Tombstones an edge slot: unlinks it from both adjacency lists and from
  /// the pair lookup. The slot index stays valid (edge_live() turns false)
  /// until Compacted() drops it.
  void RetractEdge(size_t index);
  /// Tombstones a vertex slot. The vertex must have no live incident edges.
  void RetractVertex(size_t index);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }
  size_t num_live_vertices() const { return vertices_.size() - dead_vertices_; }
  size_t num_live_edges() const { return edges_.size() - dead_edges_; }
  bool vertex_live(size_t i) const { return !vertex_dead_[i]; }
  bool edge_live(size_t i) const { return !edge_dead_[i]; }
  /// Share of edge slots that are tombstones (0 when there are no slots);
  /// the maintainer compacts past a threshold to keep scans dense.
  double edge_tombstone_fraction() const {
    return edges_.empty()
               ? 0.0
               : static_cast<double>(dead_edges_) /
                     static_cast<double>(edges_.size());
  }

  const ErgVertex& vertex(size_t i) const { return vertices_[i]; }
  ErgVertex& vertex(size_t i) { return vertices_[i]; }
  const ErgEdge& edge(size_t i) const { return edges_[i]; }
  ErgEdge& edge(size_t i) { return edges_[i]; }
  const std::vector<ErgEdge>& edges() const { return edges_; }

  /// Edge indices incident to vertex i, ascending. Safe to call from any
  /// number of threads concurrently (no mutation, not even lazily).
  const std::vector<size_t>& IncidentEdges(size_t i) const {
    return adjacency_[i];
  }

  /// Vertex index for a table row, or kNoVertex when absent/retracted.
  /// O(1): backed by a hash map maintained by AddVertex/RetractVertex.
  static constexpr size_t kNoVertex = static_cast<size_t>(-1);
  size_t VertexOfRow(size_t row) const;

  /// Live edge index between vertex indices u and v (order-insensitive), or
  /// kNoEdge. O(1) via the pair lookup.
  static constexpr size_t kNoEdge = static_cast<size_t>(-1);
  size_t EdgeBetween(size_t u, size_t v) const;

  /// Canonical dense snapshot: live vertices sorted by row ascending, live
  /// edges sorted by (row_u, row_v) ascending. The result has no tombstones
  /// and is independent of this graph's insertion/retraction history.
  Erg Compacted() const;

 private:
  static uint64_t PairKey(size_t u, size_t v);

  std::vector<ErgVertex> vertices_;
  std::vector<ErgEdge> edges_;
  std::vector<std::vector<size_t>> adjacency_;  // parallel to vertices_
  std::vector<char> vertex_dead_;               // parallel to vertices_
  std::vector<char> edge_dead_;                 // parallel to edges_
  size_t dead_vertices_ = 0;
  size_t dead_edges_ = 0;
  std::unordered_map<size_t, size_t> vertex_of_row_;
  std::unordered_map<uint64_t, size_t> edge_of_pair_;
};

class ErgSelectSupport;

/// \brief Read-only snapshot handle over a fully assembled ERG.
///
/// Selectors take an ErgView instead of the graph itself: the view is what
/// the session publishes after assembly and benefit annotation are done, so
/// selection code can never observe an in-flight mutation of the maintained
/// working graph. Implicitly constructible from const Erg& so existing
/// call sites (tests, benches) keep reading naturally.
///
/// A view may additionally carry the iteration's maintained selection
/// support (graph/select_support.h): benefit orderings and induction
/// scratch refreshed once by ErgCache instead of rebuilt per selector call.
/// Selectors treat the support as an optional accelerator — absent support
/// (the implicit constructor, the kFull reference path, plain tests) routes
/// through the original per-call constructions, and the two paths are
/// bit-identical.
class ErgView {
 public:
  ErgView(const Erg& erg) : erg_(&erg) {}  // NOLINT(google-explicit-constructor)
  ErgView(const Erg& erg, const ErgSelectSupport* support)
      : erg_(&erg), support_(support) {}

  const Erg& graph() const { return *erg_; }
  /// The maintained selection support, or nullptr on the reference path.
  const ErgSelectSupport* support() const { return support_; }

  size_t num_vertices() const { return erg_->num_vertices(); }
  size_t num_edges() const { return erg_->num_edges(); }
  const ErgVertex& vertex(size_t i) const { return erg_->vertex(i); }
  const ErgEdge& edge(size_t i) const { return erg_->edge(i); }
  const std::vector<ErgEdge>& edges() const { return erg_->edges(); }
  const std::vector<size_t>& IncidentEdges(size_t i) const {
    return erg_->IncidentEdges(i);
  }
  size_t VertexOfRow(size_t row) const { return erg_->VertexOfRow(row); }

 private:
  const Erg* erg_;
  const ErgSelectSupport* support_ = nullptr;
};

}  // namespace visclean

#endif  // VISCLEAN_GRAPH_ERG_H_
