// Simulated user: answers cleaning questions from the generator's ground
// truth, with the wrong-label% and completeness% knobs of Exp-3 (Table VI).
// This substitutes for the paper's 20 human participants; see DESIGN.md §1.
#ifndef VISCLEAN_USER_SIMULATED_USER_H_
#define VISCLEAN_USER_SIMULATED_USER_H_

#include <optional>
#include <string>

#include "clean/question.h"
#include "common/rng.h"
#include "datagen/generator.h"

namespace visclean {

/// \brief Noise knobs for the simulated user.
struct UserOptions {
  /// P(an answer is flipped/corrupted) — Table VI's WrongLabel%.
  double wrong_label_rate = 0.0;
  /// P(a question is answered at all) — Table VI's Completeness%.
  double completeness = 1.0;
  uint64_t seed = 99;
};

/// \brief Answer to an A-question: whether the two spellings co-refer, and
/// — the paper's "If so, which value should be used?" — the spelling the
/// user wants to standardize on.
struct AttributeAnswer {
  bool same = false;
  std::string preferred;  ///< meaningful when same
};

/// \brief Answer to an O-question.
struct OutlierAnswer {
  bool is_outlier = false;
  double repair = 0.0;  ///< meaningful when is_outlier
};

/// \brief Oracle-backed user. std::nullopt = question left unanswered
/// (incompleteness).
class SimulatedUser {
 public:
  SimulatedUser(const DirtyDataset* oracle, UserOptions options = {})
      : oracle_(oracle), options_(options), rng_(options.seed) {}

  /// Confirm (true) or split (false) a tuple-level duplicate edge.
  std::optional<bool> AnswerT(const TQuestion& q);

  /// Approve or reject an attribute standardization. Two spellings co-refer
  /// iff the oracle maps them to the same canonical; on approval the user
  /// also names the spelling to standardize on (the canonical one).
  std::optional<AttributeAnswer> AnswerA(const AQuestion& q);

  /// The spelling this user would standardize `spelling` to ("which value
  /// should be used?"): the oracle canonical, or the input itself when the
  /// user is careless (wrong label) or the spelling is unknown.
  std::string PreferredSpelling(size_t column, const std::string& spelling);

  /// The value to impute (the true value; with a wrong label, a corrupted
  /// one — mimicking a careless approval of a bad suggestion).
  std::optional<double> AnswerM(const MQuestion& q);

  /// Outlier verdict plus repair value.
  std::optional<OutlierAnswer> AnswerO(const OQuestion& q);

  const UserOptions& options() const { return options_; }

  /// Serialized noise-RNG state. A session snapshot persists this so a
  /// restored user keeps answering with the same skip/lie draws the
  /// uninterrupted user would have produced.
  std::string SaveRngState() const { return rng_.SaveState(); }
  /// Restores a SaveRngState() string; false when it does not parse.
  bool LoadRngState(const std::string& state) { return rng_.LoadState(state); }

 private:
  bool Skipped() { return !rng_.Bernoulli(options_.completeness); }
  bool Lies() { return rng_.Bernoulli(options_.wrong_label_rate); }

  const DirtyDataset* oracle_;
  UserOptions options_;
  Rng rng_;
};

}  // namespace visclean

#endif  // VISCLEAN_USER_SIMULATED_USER_H_
