// cost_model.h is header-only; this TU checks self-containedness.
#include "user/cost_model.h"
