// User-time cost model, calibrated to the measurements of Figs. 15-16.
//
// The paper's 20 participants spent about 520 s answering 15 composite
// questions (~34.7 s per CQG at k = 10) versus about 860 s answering 15
// equally sized groups of single questions (~57.3 s per group, i.e. ~5.7 s
// per isolated question). Composite questions are cheaper per label because
// the graph shares context between related questions; singles pay the
// context-switch on every question. The constants below reproduce those
// aggregates and are swept in the user-cost bench.
#ifndef VISCLEAN_USER_COST_MODEL_H_
#define VISCLEAN_USER_COST_MODEL_H_

#include <cstddef>

namespace visclean {

/// \brief Seconds of human effort per interaction element.
struct UserCostModel {
  // Composite question (one CQG).
  double cqg_base_seconds = 8.0;      ///< orienting on the graph
  double cqg_edge_seconds = 2.2;      ///< per edge label (confirm/split)
  double cqg_vertex_seconds = 1.5;    ///< per vertex M-/O-question

  // Isolated single questions.
  double single_t_seconds = 6.0;   ///< compare two full tuples
  double single_a_seconds = 5.0;   ///< compare two spellings
  double single_m_seconds = 5.5;   ///< validate an imputation
  double single_o_seconds = 6.5;   ///< judge an outlier + pick repair

  /// Cost of answering one CQG with the given shape.
  double CqgSeconds(size_t num_edges, size_t num_vertex_questions) const {
    return cqg_base_seconds +
           cqg_edge_seconds * static_cast<double>(num_edges) +
           cqg_vertex_seconds * static_cast<double>(num_vertex_questions);
  }

  /// Cost of a group of isolated single questions.
  double SingleGroupSeconds(size_t t, size_t a, size_t m, size_t o) const {
    return single_t_seconds * static_cast<double>(t) +
           single_a_seconds * static_cast<double>(a) +
           single_m_seconds * static_cast<double>(m) +
           single_o_seconds * static_cast<double>(o);
  }
};

}  // namespace visclean

#endif  // VISCLEAN_USER_COST_MODEL_H_
