#include "user/simulated_user.h"

#include <cmath>

namespace visclean {

std::optional<bool> SimulatedUser::AnswerT(const TQuestion& q) {
  if (Skipped()) return std::nullopt;
  bool truth = oracle_->SameEntity(q.row_a, q.row_b);
  return Lies() ? !truth : truth;
}

std::optional<AttributeAnswer> SimulatedUser::AnswerA(const AQuestion& q) {
  if (Skipped()) return std::nullopt;
  std::string ca = oracle_->CanonicalOf(q.column, q.value_a);
  std::string cb = oracle_->CanonicalOf(q.column, q.value_b);
  bool truth = !ca.empty() && ca == cb;
  AttributeAnswer answer;
  answer.same = Lies() ? !truth : truth;
  if (answer.same) {
    // A careful user names the canonical spelling; a careless one
    // rubber-stamps the question's proposed target.
    answer.preferred = Lies() ? q.value_b : ca;
    if (answer.preferred.empty()) answer.preferred = q.value_b;
  }
  return answer;
}

std::string SimulatedUser::PreferredSpelling(size_t column,
                                             const std::string& spelling) {
  if (Lies()) return spelling;
  return oracle_->CanonicalOf(column, spelling);
}

std::optional<double> SimulatedUser::AnswerM(const MQuestion& q) {
  if (Skipped()) return std::nullopt;
  const Value& truth = oracle_->TrueValue(q.row, q.column);
  double value = truth.is_null() ? q.suggested : truth.ToNumberOr(q.suggested);
  if (Lies()) {
    // A careless user rubber-stamps the (possibly wrong) suggestion or
    // fat-fingers a digit.
    return rng_.Bernoulli(0.5) ? q.suggested : value * 10.0;
  }
  return value;
}

std::optional<OutlierAnswer> SimulatedUser::AnswerO(const OQuestion& q) {
  if (Skipped()) return std::nullopt;
  const Value& truth = oracle_->TrueValue(q.row, q.column);
  double true_value = truth.ToNumberOr(q.current);
  // Genuine outlier: the stored value is far from the entity's true value.
  double denom = std::max(std::fabs(true_value), 1.0);
  bool truth_is_outlier = std::fabs(q.current - true_value) / denom > 0.5;
  OutlierAnswer answer;
  answer.is_outlier = Lies() ? !truth_is_outlier : truth_is_outlier;
  answer.repair = answer.is_outlier ? true_value : q.current;
  if (Lies() && answer.is_outlier) answer.repair = q.suggested;
  return answer;
}

}  // namespace visclean
