#include "vql/parser.h"

#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace visclean {

namespace {

enum class TokKind { kWord, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // words uppercased for keyword matching; raw otherwise
  std::string raw;   // original spelling (identifiers keep case)
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const std::string& s = text_;
    while (i < s.size()) {
      char c = s[i];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++i;
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        std::string lit;
        ++i;
        bool closed = false;
        while (i < s.size()) {
          if (s[i] == quote) {
            if (i + 1 < s.size() && s[i + 1] == quote) {
              lit += quote;
              i += 2;
              continue;
            }
            ++i;
            closed = true;
            break;
          }
          lit += s[i++];
        }
        if (!closed) return Status::ParseError("unterminated string literal");
        out.push_back({TokKind::kString, lit, lit, 0.0});
        continue;
      }
      if ((c >= '0' && c <= '9') ||
          (c == '-' && i + 1 < s.size() && s[i + 1] >= '0' && s[i + 1] <= '9') ||
          (c == '.' && i + 1 < s.size() && s[i + 1] >= '0' && s[i + 1] <= '9')) {
        size_t start = i;
        if (c == '-') ++i;
        while (i < s.size() &&
               ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' || s[i] == 'e' ||
                s[i] == 'E' ||
                ((s[i] == '+' || s[i] == '-') &&
                 (s[i - 1] == 'e' || s[i - 1] == 'E')))) {
          ++i;
        }
        std::string num = s.substr(start, i - start);
        out.push_back({TokKind::kNumber, num, num, std::strtod(num.c_str(), nullptr)});
        continue;
      }
      bool word_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == '#';
      if (word_char) {
        size_t start = i;
        while (i < s.size()) {
          char w = s[i];
          bool ok = (w >= 'a' && w <= 'z') || (w >= 'A' && w <= 'Z') ||
                    (w >= '0' && w <= '9') || w == '_' || w == '#' || w == '.';
          if (!ok) break;
          ++i;
        }
        std::string raw = s.substr(start, i - start);
        std::string upper = raw;
        for (char& ch : upper) {
          if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
        }
        out.push_back({TokKind::kWord, upper, raw, 0.0});
        continue;
      }
      // Symbols: ( ) , and comparison operators.
      if (c == '<' || c == '>') {
        std::string sym(1, c);
        if (i + 1 < s.size() && s[i + 1] == '=') {
          sym += '=';
          ++i;
        }
        ++i;
        out.push_back({TokKind::kSymbol, sym, sym, 0.0});
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=') {
        std::string sym(1, c);
        ++i;
        out.push_back({TokKind::kSymbol, sym, sym, 0.0});
        continue;
      }
      return Status::ParseError(StrFormat("unexpected character '%c'", c));
    }
    out.push_back({TokKind::kEnd, "", "", 0.0});
    return out;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<VqlQuery> Parse() {
    VqlQuery q;
    VC_RETURN_IF_ERROR(ParseVisualize(&q));
    VC_RETURN_IF_ERROR(ParseSelect(&q));
    VC_RETURN_IF_ERROR(ParseFrom(&q));
    // Optional clauses in any order.
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind != TokKind::kWord) {
        return Status::ParseError("expected clause keyword, got '" + t.raw + "'");
      }
      if (t.text == "TRANSFORM") {
        VC_RETURN_IF_ERROR(ParseTransform(&q));
      } else if (t.text == "WHERE") {
        VC_RETURN_IF_ERROR(ParseWhere(&q));
      } else if (t.text == "SORT") {
        VC_RETURN_IF_ERROR(ParseSort(&q));
      } else if (t.text == "LIMIT") {
        VC_RETURN_IF_ERROR(ParseLimit(&q));
      } else {
        return Status::ParseError("unknown clause '" + t.raw + "'");
      }
    }
    if (q.x_transform == XTransform::kBin && q.bin_interval <= 0.0) {
      return Status::ParseError("BIN transform requires BY INTERVAL w > 0");
    }
    return q;
  }

 private:
  bool AtEnd() const { return tokens_[pos_].kind == TokKind::kEnd; }
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeWord(const char* word) {
    if (Peek().kind == TokKind::kWord && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(const char* sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectWord(const char* word) {
    if (!ConsumeWord(word)) {
      return Status::ParseError(std::string("expected keyword ") + word +
                                ", got '" + Peek().raw + "'");
    }
    return Status::Ok();
  }

  Status ExpectSymbol(const char* sym) {
    if (!ConsumeSymbol(sym)) {
      return Status::ParseError(std::string("expected '") + sym + "', got '" +
                                Peek().raw + "'");
    }
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokKind::kWord) {
      return Status::ParseError("expected identifier, got '" + Peek().raw + "'");
    }
    return Next().raw;
  }

  Status ParseVisualize(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("VISUALIZE"));
    // Optional "TYPE" noise word (Fig. 2 writes "TYPE in {Bar, Pie}").
    ConsumeWord("TYPE");
    if (ConsumeWord("BAR")) {
      q->chart = ChartType::kBar;
    } else if (ConsumeWord("PIE")) {
      q->chart = ChartType::kPie;
    } else {
      return Status::ParseError("VISUALIZE expects BAR or PIE");
    }
    return Status::Ok();
  }

  Status ParseSelect(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("SELECT"));
    // X expression.
    if (ConsumeWord("GROUP")) {
      VC_RETURN_IF_ERROR(ExpectSymbol("("));
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      q->x_column = id.value();
      q->x_transform = XTransform::kGroup;
      VC_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (ConsumeWord("BIN")) {
      VC_RETURN_IF_ERROR(ExpectSymbol("("));
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      q->x_column = id.value();
      q->x_transform = XTransform::kBin;
      VC_RETURN_IF_ERROR(ExpectSymbol(")"));
      VC_RETURN_IF_ERROR(MaybeParseByInterval(q));
    } else {
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      q->x_column = id.value();
    }
    VC_RETURN_IF_ERROR(ExpectSymbol(","));
    // Y expression.
    AggFunc agg = AggFunc::kNone;
    if (ConsumeWord("SUM")) {
      agg = AggFunc::kSum;
    } else if (ConsumeWord("AVG")) {
      agg = AggFunc::kAvg;
    } else if (ConsumeWord("COUNT")) {
      agg = AggFunc::kCount;
    }
    if (agg != AggFunc::kNone) {
      VC_RETURN_IF_ERROR(ExpectSymbol("("));
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      q->y_column = id.value();
      VC_RETURN_IF_ERROR(ExpectSymbol(")"));
      q->agg = agg;
    } else {
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      q->y_column = id.value();
    }
    return Status::Ok();
  }

  Status ParseFrom(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("FROM"));
    Result<std::string> id = ExpectIdentifier();
    if (!id.ok()) return id.status();
    q->dataset = id.value();
    return Status::Ok();
  }

  Status MaybeParseByInterval(VqlQuery* q) {
    if (ConsumeWord("BY")) {
      VC_RETURN_IF_ERROR(ExpectWord("INTERVAL"));
      if (Peek().kind != TokKind::kNumber) {
        return Status::ParseError("INTERVAL expects a number");
      }
      q->bin_interval = Next().number;
    }
    return Status::Ok();
  }

  Status ParseTransform(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("TRANSFORM"));
    if (ConsumeWord("GROUP")) {
      VC_RETURN_IF_ERROR(ExpectSymbol("("));
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      VC_RETURN_IF_ERROR(ExpectSymbol(")"));
      q->x_column = id.value();
      q->x_transform = XTransform::kGroup;
    } else if (ConsumeWord("BIN")) {
      VC_RETURN_IF_ERROR(ExpectSymbol("("));
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      VC_RETURN_IF_ERROR(ExpectSymbol(")"));
      q->x_column = id.value();
      q->x_transform = XTransform::kBin;
      VC_RETURN_IF_ERROR(MaybeParseByInterval(q));
    } else {
      return Status::ParseError("TRANSFORM expects GROUP(...) or BIN(...)");
    }
    return Status::Ok();
  }

  Status ParseWhere(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("WHERE"));
    while (true) {
      Predicate p;
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      p.column = id.value();
      const Token& op = Peek();
      if (op.kind != TokKind::kSymbol) {
        return Status::ParseError("expected comparison operator");
      }
      if (op.text == "=") {
        p.op = CompareOp::kEq;
      } else if (op.text == "<") {
        p.op = CompareOp::kLt;
      } else if (op.text == "<=") {
        p.op = CompareOp::kLe;
      } else if (op.text == ">=") {
        p.op = CompareOp::kGe;
      } else if (op.text == ">") {
        p.op = CompareOp::kGt;
      } else {
        return Status::ParseError("unknown operator '" + op.raw + "'");
      }
      ++pos_;
      const Token& lit = Next();
      if (lit.kind == TokKind::kNumber) {
        p.literal = Value::Number(lit.number);
      } else if (lit.kind == TokKind::kString) {
        p.literal = Value::String(lit.raw);
      } else if (lit.kind == TokKind::kWord) {
        // Bare-word literal (Table V writes `Venue = SIGMOD`).
        p.literal = Value::String(lit.raw);
      } else {
        return Status::ParseError("expected literal after operator");
      }
      q->predicates.push_back(std::move(p));
      if (!ConsumeWord("AND")) break;
    }
    return Status::Ok();
  }

  Status ParseSort(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("SORT"));
    if (ConsumeWord("X")) {
      q->sort_key = SortKey::kX;
    } else if (ConsumeWord("Y")) {
      q->sort_key = SortKey::kY;
    } else {
      // Allow sorting by a column name equal to the X or Y column.
      Result<std::string> id = ExpectIdentifier();
      if (!id.ok()) return id.status();
      if (EqualsIgnoreCase(id.value(), q->x_column)) {
        q->sort_key = SortKey::kX;
      } else if (EqualsIgnoreCase(id.value(), q->y_column)) {
        q->sort_key = SortKey::kY;
      } else {
        return Status::ParseError("SORT key must be X, Y, or a selected column");
      }
    }
    ConsumeWord("BY");  // optional noise word per Fig. 2
    if (ConsumeWord("DESC")) {
      q->sort_order = SortOrder::kDesc;
    } else if (ConsumeWord("ASC")) {
      q->sort_order = SortOrder::kAsc;
    } else {
      q->sort_order = SortOrder::kDesc;
    }
    return Status::Ok();
  }

  Status ParseLimit(VqlQuery* q) {
    VC_RETURN_IF_ERROR(ExpectWord("LIMIT"));
    if (Peek().kind != TokKind::kNumber) {
      return Status::ParseError("LIMIT expects a number");
    }
    q->limit = static_cast<int>(Next().number);
    if (q->limit < 0) return Status::ParseError("LIMIT must be nonnegative");
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<VqlQuery> ParseVql(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace visclean
