// Abstract syntax for the SQL-like Visualization Query Language of Fig. 2.
//
// A VqlQuery is what the user specifies in step (1) of the framework; the
// executor renders it against any version of the dataset, which is how the
// benefit model compares visualizations before/after speculative repairs.
#ifndef VISCLEAN_VQL_AST_H_
#define VISCLEAN_VQL_AST_H_

#include <string>
#include <vector>

#include "data/value.h"
#include "dist/vis_data.h"

namespace visclean {

/// Transformation applied to the X column (TRANSFORM clause).
enum class XTransform {
  kNone,   ///< X' = X, one mark per tuple
  kGroup,  ///< X' = GROUP(X): one mark per distinct categorical value
  kBin,    ///< X' = BIN(X) BY INTERVAL w: one mark per numeric bin
};

/// Aggregation applied to the Y column (paper's AGG in {SUM, AVG, COUNT}).
enum class AggFunc { kNone, kSum, kAvg, kCount };

/// SORT clause key.
enum class SortKey { kNone, kX, kY };
enum class SortOrder { kAsc, kDesc };

/// Comparison operators allowed in WHERE (Fig. 2: =, <, <=, >=, >).
enum class CompareOp { kEq, kLt, kLe, kGe, kGt };

/// \brief One conjunct of the WHERE clause: `column OP literal`.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// \brief A complete parsed visualization query.
struct VqlQuery {
  ChartType chart = ChartType::kBar;
  std::string x_column;
  std::string y_column;
  std::string dataset;  ///< FROM clause; informational (the executor takes a Table)

  XTransform x_transform = XTransform::kNone;
  double bin_interval = 0.0;  ///< width when x_transform == kBin

  AggFunc agg = AggFunc::kNone;

  std::vector<Predicate> predicates;  ///< conjunctive WHERE

  SortKey sort_key = SortKey::kNone;
  SortOrder sort_order = SortOrder::kDesc;
  int limit = -1;  ///< LIMIT K; -1 = no limit

  /// Canonical textual rendering (parseable back by ParseVql).
  std::string ToString() const;
};

/// Spelling of a CompareOp ("=", "<", "<=", ">=", ">").
std::string CompareOpToString(CompareOp op);

}  // namespace visclean

#endif  // VISCLEAN_VQL_AST_H_
