#include "vql/ast.h"

#include "common/strings.h"

namespace visclean {

std::string CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
  }
  return "=";
}

std::string VqlQuery::ToString() const {
  std::string out = "VISUALIZE ";
  out += chart == ChartType::kBar ? "BAR" : "PIE";
  out += "\nSELECT ";
  switch (x_transform) {
    case XTransform::kNone:
      out += x_column;
      break;
    case XTransform::kGroup:
      out += "GROUP(" + x_column + ")";
      break;
    case XTransform::kBin:
      out += "BIN(" + x_column + ")";
      break;
  }
  out += ", ";
  switch (agg) {
    case AggFunc::kNone:
      out += y_column;
      break;
    case AggFunc::kSum:
      out += "SUM(" + y_column + ")";
      break;
    case AggFunc::kAvg:
      out += "AVG(" + y_column + ")";
      break;
    case AggFunc::kCount:
      out += "COUNT(" + y_column + ")";
      break;
  }
  out += "\nFROM " + (dataset.empty() ? std::string("D") : dataset);
  if (x_transform == XTransform::kBin) {
    out += StrFormat("\nTRANSFORM BIN(%s) BY INTERVAL %g", x_column.c_str(),
                     bin_interval);
  } else if (x_transform == XTransform::kGroup) {
    out += "\nTRANSFORM GROUP(" + x_column + ")";
  }
  if (!predicates.empty()) {
    out += "\nWHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) out += " AND ";
      const Predicate& p = predicates[i];
      out += p.column + " " + CompareOpToString(p.op) + " ";
      if (p.literal.is_string()) {
        out += "'" + p.literal.AsString() + "'";
      } else {
        out += p.literal.ToDisplayString();
      }
    }
  }
  if (sort_key != SortKey::kNone) {
    out += "\nSORT ";
    out += sort_key == SortKey::kX ? "X" : "Y";
    out += sort_order == SortOrder::kDesc ? " DESC" : " ASC";
  }
  if (limit >= 0) out += StrFormat("\nLIMIT %d", limit);
  return out;
}

}  // namespace visclean
