// Recursive-descent parser for the VQL grammar of Fig. 2.
#ifndef VISCLEAN_VQL_PARSER_H_
#define VISCLEAN_VQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "vql/ast.h"

namespace visclean {

/// \brief Parses VQL text into a VqlQuery.
///
/// Example:
/// \code
///   VISUALIZE BAR
///   SELECT Venue, SUM(Citations)
///   FROM D1
///   TRANSFORM GROUP(Venue)
///   WHERE Year > 2009 AND Venue = 'SIGMOD'
///   SORT Y DESC
///   LIMIT 10
/// \endcode
///
/// Keywords are case-insensitive; clause order after FROM is flexible;
/// VISUALIZE, SELECT and FROM are mandatory (blue keywords in Fig. 2),
/// everything else optional (green). Writing GROUP(X)/BIN(X) in SELECT is
/// equivalent to a TRANSFORM clause; `BIN(X) BY INTERVAL w` supplies the bin
/// width.
Result<VqlQuery> ParseVql(const std::string& text);

}  // namespace visclean

#endif  // VISCLEAN_VQL_PARSER_H_
