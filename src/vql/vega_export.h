// Vega-Lite export: Section II-A notes that "other declarative languages
// (e.g., Vega-Lite) can also be used" in place of VQL. This module renders
// a VisData (optionally with its VqlQuery for axis titles) as a Vega-Lite
// v5 specification, so cleaned visualizations drop straight into notebooks
// and web frontends.
#ifndef VISCLEAN_VQL_VEGA_EXPORT_H_
#define VISCLEAN_VQL_VEGA_EXPORT_H_

#include <string>

#include "dist/vis_data.h"
#include "vql/ast.h"

namespace visclean {

/// \brief Options for ToVegaLite.
struct VegaExportOptions {
  bool pretty = true;          ///< indented output
  int width = 480;             ///< chart width in pixels
  int height = 300;            ///< chart height in pixels
  std::string title;           ///< optional chart title
};

/// Serializes a rendered visualization as a Vega-Lite v5 spec:
/// bar charts become `"mark": "bar"` with a nominal x / quantitative y
/// encoding; pie charts become `"mark": "arc"` with a theta/color encoding.
/// Data is inlined under `data.values`.
std::string ToVegaLite(const VisData& vis, const VegaExportOptions& options = {});

/// Variant that derives axis titles (and a default title) from the query.
std::string ToVegaLite(const VisData& vis, const VqlQuery& query,
                       const VegaExportOptions& options = {});

}  // namespace visclean

#endif  // VISCLEAN_VQL_VEGA_EXPORT_H_
