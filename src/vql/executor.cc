#include "vql/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"
#include "vql/parser.h"

namespace visclean {

namespace {

// Evaluates one predicate against a cell. Null never satisfies.
bool EvalPredicate(const Predicate& p, const Value& cell) {
  if (cell.is_null()) return false;
  if (p.literal.is_number()) {
    double lit = p.literal.AsNumber();
    double v = cell.ToNumberOr(std::numeric_limits<double>::quiet_NaN());
    if (std::isnan(v)) return false;
    switch (p.op) {
      case CompareOp::kEq:
        return v == lit;
      case CompareOp::kLt:
        return v < lit;
      case CompareOp::kLe:
        return v <= lit;
      case CompareOp::kGe:
        return v >= lit;
      case CompareOp::kGt:
        return v > lit;
    }
    return false;
  }
  // String literal: compare display strings. Only `=` is meaningful for
  // categorical data; order comparisons use lexicographic order.
  std::string lhs = cell.ToDisplayString();
  const std::string& rhs = p.literal.AsString();
  switch (p.op) {
    case CompareOp::kEq:
      return EqualsIgnoreCase(lhs, rhs);
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
  }
  return false;
}

// Query with column references resolved against one schema. Compiling once
// lets the incremental paths re-evaluate single rows without re-resolving.
struct CompiledVql {
  const VqlQuery* query = nullptr;
  size_t x_col = 0;
  size_t y_col = 0;
  std::vector<size_t> pred_cols;  // aligned with query->predicates
};

Result<CompiledVql> Compile(const VqlQuery& query, const Schema& schema) {
  CompiledVql c;
  c.query = &query;
  Result<size_t> x_col = schema.IndexOf(query.x_column);
  if (!x_col.ok()) return x_col.status();
  c.x_col = x_col.value();
  Result<size_t> y_col = schema.IndexOf(query.y_column);
  if (!y_col.ok()) return y_col.status();
  c.y_col = y_col.value();
  c.pred_cols.resize(query.predicates.size());
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    Result<size_t> col = schema.IndexOf(query.predicates[i].column);
    if (!col.ok()) return col.status();
    c.pred_cols[i] = col.value();
  }
  return c;
}

// True when the (live) row satisfies every WHERE conjunct.
bool RowPasses(const CompiledVql& c, const Table& table, size_t row) {
  for (size_t i = 0; i < c.pred_cols.size(); ++i) {
    if (!EvalPredicate(c.query->predicates[i], table.at(row, c.pred_cols[i]))) {
      return false;
    }
  }
  return true;
}

// Numeric sort key of a contributing row (GROUP/BIN paths only). Must match
// the assignment the full render performs per row: last contributor wins.
double NumericKeyOf(const CompiledVql& c, const Table& table, size_t row) {
  const Value& xv = table.at(row, c.x_col);
  if (c.query->x_transform == XTransform::kGroup) return xv.ToNumberOr(0.0);
  double x = xv.ToNumberOr(0.0);  // callers only pass rows with numeric X
  return std::floor(x / c.query->bin_interval) * c.query->bin_interval;
}

// Group key of a row under GROUP/BIN; false when the row is dropped from X'
// (null X, or non-numeric X under BIN).
bool GroupKeyOf(const CompiledVql& c, const Table& table, size_t row,
                std::string* key, double* numeric_key) {
  const Value& xv = table.at(row, c.x_col);
  if (xv.is_null()) return false;
  if (c.query->x_transform == XTransform::kGroup) {
    *key = xv.ToDisplayString();
    *numeric_key = xv.ToNumberOr(0.0);
    return true;
  }
  double x = xv.ToNumberOr(std::numeric_limits<double>::quiet_NaN());
  if (std::isnan(x)) return false;
  double lo = std::floor(x / c.query->bin_interval) * c.query->bin_interval;
  *key = StrFormat("[%g, %g)", lo, lo + c.query->bin_interval);
  *numeric_key = lo;
  return true;
}

// Measure of a row for accumulation; false when the Y cell is null (SUM/AVG/
// COUNT all skip null measures).
bool MeasureOf(const CompiledVql& c, const Table& table, size_t row,
               double* y) {
  const Value& yv = table.at(row, c.y_col);
  if (yv.is_null()) return false;
  *y = yv.ToNumberOr(0.0);
  return true;
}

// Aggregate finalization shared by the full and incremental paths.
double FinalizeY(AggFunc agg, double sum, size_t count) {
  switch (agg) {
    case AggFunc::kSum:
      return sum;
    case AggFunc::kAvg:
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    case AggFunc::kCount:
      return static_cast<double>(count);
    case AggFunc::kNone:
      // Grouping without an aggregate defaults to SUM (a bar per group
      // needs a single measure).
      return sum;
  }
  return sum;
}

// Internal points carry a numeric sort key for bins / numeric X.
struct RawPoint {
  std::string label;
  double numeric_key;
  bool has_numeric_key;
  double y;
};

// SORT + LIMIT over assembled points, shared by every render path. For
// GROUP/BIN output every label is unique and every point carries a numeric
// key, so the comparators below are strict total orders: the sorted sequence
// is unique regardless of the input order — which is what lets the delta
// path assemble groups in any order and still match the full render
// bit-for-bit.
void SortLimitPoints(const VqlQuery& query, std::vector<RawPoint>* raw) {
  bool x_numeric =
      !raw->empty() &&
      std::all_of(raw->begin(), raw->end(),
                  [](const RawPoint& p) { return p.has_numeric_key; });
  auto cmp_x = [&](const RawPoint& a, const RawPoint& b) {
    if (x_numeric && a.numeric_key != b.numeric_key)
      return a.numeric_key < b.numeric_key;
    return a.label < b.label;
  };
  if (query.sort_key == SortKey::kY) {
    std::stable_sort(raw->begin(), raw->end(),
                     [&](const RawPoint& a, const RawPoint& b) {
                       if (a.y != b.y) {
                         return query.sort_order == SortOrder::kAsc ? a.y < b.y
                                                                    : a.y > b.y;
                       }
                       return cmp_x(a, b);  // deterministic ties
                     });
  } else if (query.sort_key == SortKey::kX) {
    std::stable_sort(raw->begin(), raw->end(),
                     [&](const RawPoint& a, const RawPoint& b) {
                       return query.sort_order == SortOrder::kAsc ? cmp_x(a, b)
                                                                  : cmp_x(b, a);
                     });
  } else if (query.x_transform != XTransform::kNone) {
    // Deterministic default order for grouped output.
    std::stable_sort(raw->begin(), raw->end(), cmp_x);
  }
  if (query.limit >= 0 && raw->size() > static_cast<size_t>(query.limit)) {
    raw->resize(static_cast<size_t>(query.limit));
  }
}

VisData AssembleVis(const VqlQuery& query, std::vector<RawPoint> raw) {
  SortLimitPoints(query, &raw);
  VisData vis;
  vis.type = query.chart;
  vis.x_name = query.x_column;
  vis.y_name = query.y_column;
  vis.points.reserve(raw.size());
  for (RawPoint& p : raw) {
    vis.points.push_back({std::move(p.label), p.y});
  }
  return vis;
}

struct Accum {
  double sum = 0.0;
  size_t count = 0;
};

// Single implementation behind ExecuteVql and ExecuteVqlIndexed: the full
// render optionally records tuple->group provenance as it goes, so the
// indexed baseline can never drift from the plain render.
Result<VisData> ExecuteImpl(const VqlQuery& query, const Table& table,
                            VisProvenance* prov) {
  if (prov != nullptr) prov->Clear();
  Result<CompiledVql> compiled = Compile(query, table.schema());
  if (!compiled.ok()) return compiled.status();
  const CompiledVql& c = compiled.value();

  // Filter.
  std::vector<size_t> rows;
  for (size_t r : table.LiveRowIds()) {
    if (RowPasses(c, table, r)) rows.push_back(r);
  }

  std::vector<RawPoint> raw;

  if (query.x_transform == XTransform::kNone) {
    // One mark per tuple (query types 1 & 2 of Table III). Per-tuple marks
    // have no group structure: provenance stays unsupported and incremental
    // consumers fall back to full renders.
    for (size_t r : rows) {
      const Value& xv = table.at(r, c.x_col);
      const Value& yv = table.at(r, c.y_col);
      double y;
      if (query.agg == AggFunc::kCount) {
        y = yv.is_null() ? 0.0 : 1.0;
      } else {
        if (yv.is_null()) continue;  // cannot plot a missing measure
        y = yv.ToNumberOr(0.0);
      }
      RawPoint p;
      p.label = xv.ToDisplayString();
      p.has_numeric_key = xv.is_number();
      p.numeric_key = p.has_numeric_key ? xv.AsNumber() : 0.0;
      p.y = y;
      raw.push_back(std::move(p));
    }
    return AssembleVis(query, std::move(raw));
  }

  // GROUP or BIN: key -> accumulator (+ provenance rows when indexing).
  struct GroupAccum {
    Accum acc;
    double numeric_key = 0.0;
    std::vector<size_t> rows;
  };
  std::map<std::string, GroupAccum> groups;
  std::string key;
  double numeric_key = 0.0;
  for (size_t r : rows) {
    if (!GroupKeyOf(c, table, r, &key, &numeric_key)) continue;
    GroupAccum& g = groups[key];
    g.numeric_key = numeric_key;
    if (prov != nullptr) g.rows.push_back(r);  // LiveRowIds is ascending
    double y;
    if (!MeasureOf(c, table, r, &y)) continue;
    g.acc.sum += y;
    g.acc.count += 1;
  }

  raw.reserve(groups.size());
  for (auto& [label, g] : groups) {
    RawPoint p;
    p.label = label;
    p.numeric_key = g.numeric_key;
    p.has_numeric_key = true;
    p.y = FinalizeY(query.agg, g.acc.sum, g.acc.count);
    raw.push_back(std::move(p));
  }

  if (prov != nullptr) {
    prov->groups.reserve(groups.size());
    prov->group_of_row.assign(table.num_rows(), VisProvenance::kNoGroup);
    for (auto& [label, g] : groups) {
      size_t slot = prov->groups.size();
      GroupState state;
      state.label = label;
      state.numeric_key = g.numeric_key;
      state.sum = g.acc.sum;
      state.count = g.acc.count;
      state.rows = std::move(g.rows);
      for (size_t r : state.rows) prov->group_of_row[r] = slot;
      prov->group_of_key.emplace(label, slot);
      prov->groups.push_back(std::move(state));
    }
    prov->supported = true;
  }

  return AssembleVis(query, std::move(raw));
}

// Re-aggregates one group from scratch over `members` (ascending row ids):
// the same values in the same order a full render would visit, so the result
// is bit-identical to a full recompute of the group.
GroupState Reaggregate(const CompiledVql& c, const Table& table,
                       std::string label, std::vector<size_t> members) {
  GroupState out;
  out.label = std::move(label);
  out.rows = std::move(members);
  for (size_t r : out.rows) {
    out.numeric_key = NumericKeyOf(c, table, r);  // last contributor wins
    double y;
    if (MeasureOf(c, table, r, &y)) {
      out.sum += y;
      out.count += 1;
    }
  }
  return out;
}

// Classifies the touched rows against the baseline provenance and
// re-aggregates every dirty group into `scratch` (recomputed / born). The
// baseline itself is never written — callers either read the results
// (speculative render) or commit them (CommitVqlDelta).
void ComputeDelta(const CompiledVql& c, const Table& table,
                  const VisProvenance& prov,
                  const std::vector<size_t>& touched_rows,
                  DeltaScratch* scratch) {
  scratch->touched = touched_rows;
  std::sort(scratch->touched.begin(), scratch->touched.end());
  scratch->touched.erase(
      std::unique(scratch->touched.begin(), scratch->touched.end()),
      scratch->touched.end());

  scratch->dirty.Reset(prov.groups.size());
  scratch->adds.clear();
  scratch->born.clear();
  if (scratch->recomputed.size() < prov.groups.size()) {
    scratch->recomputed.resize(prov.groups.size());
  }

  // Classify: a touched row dirties the group it used to feed and joins the
  // group (existing or born) its repaired cells now map to.
  std::string key;
  double numeric_key = 0.0;
  for (size_t r : scratch->touched) {
    size_t old_group = prov.GroupOfRow(r);
    if (old_group != VisProvenance::kNoGroup) scratch->dirty.Mark(old_group);
    if (r >= table.num_rows() || table.is_dead(r)) continue;
    if (!RowPasses(c, table, r)) continue;
    if (!GroupKeyOf(c, table, r, &key, &numeric_key)) continue;
    auto it = prov.group_of_key.find(key);
    if (it != prov.group_of_key.end()) {
      scratch->dirty.Mark(it->second);
      scratch->adds[it->second].push_back(r);  // ascending: touched is sorted
    } else {
      scratch->born[key].push_back(r);
    }
  }

  // Re-aggregate each dirty group over (baseline members \ touched) merged
  // with the touched rows that now map to it.
  static const std::vector<size_t> kNoAdds;
  for (size_t g : scratch->dirty.ids()) {
    auto add_it = scratch->adds.find(g);
    const std::vector<size_t>& adds =
        add_it != scratch->adds.end() ? add_it->second : kNoAdds;
    std::vector<size_t> kept;
    kept.reserve(prov.groups[g].rows.size() + adds.size());
    std::set_difference(prov.groups[g].rows.begin(), prov.groups[g].rows.end(),
                        scratch->touched.begin(), scratch->touched.end(),
                        std::back_inserter(kept));
    std::vector<size_t> members;
    members.reserve(kept.size() + adds.size());
    std::merge(kept.begin(), kept.end(), adds.begin(), adds.end(),
               std::back_inserter(members));
    scratch->recomputed[g] =
        Reaggregate(c, table, prov.groups[g].label, std::move(members));
  }
}

// Assembles the post-delta point set: clean groups from the cached baseline,
// dirty groups from the recomputed states, plus the born groups. Emptied
// groups vanish exactly as they would from a full render.
VisData AssembleDelta(const CompiledVql& c, const Table& table,
                      const VisProvenance& prov, DeltaScratch* scratch) {
  std::vector<RawPoint> raw;
  raw.reserve(prov.num_live_groups() + scratch->born.size());
  for (const auto& [label, g] : prov.group_of_key) {
    const GroupState& s =
        scratch->dirty.IsDirty(g) ? scratch->recomputed[g] : prov.groups[g];
    if (s.rows.empty()) continue;
    RawPoint p;
    p.label = label;
    p.numeric_key = s.numeric_key;
    p.has_numeric_key = true;
    p.y = FinalizeY(c.query->agg, s.sum, s.count);
    raw.push_back(std::move(p));
  }
  for (auto& [key, rows] : scratch->born) {
    GroupState s = Reaggregate(c, table, key, std::move(rows));
    RawPoint p;
    p.label = key;
    p.numeric_key = s.numeric_key;
    p.has_numeric_key = true;
    p.y = FinalizeY(c.query->agg, s.sum, s.count);
    raw.push_back(std::move(p));
    rows = std::move(s.rows);  // keep for CommitVqlDelta
  }
  return AssembleVis(*c.query, std::move(raw));
}

// Full-render fallback used when a delta cannot be taken; mirrors the
// benefit model's convention that an execution error renders empty.
VisData FullRenderOrEmpty(const VqlQuery& query, const Table& table) {
  Result<VisData> vis = ExecuteImpl(query, table, nullptr);
  if (!vis.ok()) return {};
  return std::move(vis).value();
}

}  // namespace

Result<VisData> ExecuteVql(const VqlQuery& query, const Table& table) {
  return ExecuteImpl(query, table, nullptr);
}

Result<VisData> ExecuteVqlIndexed(const VqlQuery& query, const Table& table,
                                  VisProvenance* prov) {
  return ExecuteImpl(query, table, prov);
}

VisData ExecuteVqlDelta(const VqlQuery& query, const Table& table,
                        const VisProvenance& prov,
                        const std::vector<size_t>& touched_rows,
                        DeltaScratch* scratch) {
  if (!prov.supported) return FullRenderOrEmpty(query, table);
  Result<CompiledVql> compiled = Compile(query, table.schema());
  if (!compiled.ok()) return FullRenderOrEmpty(query, table);
  ComputeDelta(compiled.value(), table, prov, touched_rows, scratch);
  return AssembleDelta(compiled.value(), table, prov, scratch);
}

VisData CommitVqlDelta(const VqlQuery& query, const Table& table,
                       const std::vector<size_t>& touched_rows,
                       VisProvenance* prov, DeltaScratch* scratch) {
  if (!prov->supported) return FullRenderOrEmpty(query, table);
  Result<CompiledVql> compiled = Compile(query, table.schema());
  if (!compiled.ok()) {
    prov->Clear();
    return FullRenderOrEmpty(query, table);
  }
  const CompiledVql& c = compiled.value();
  ComputeDelta(c, table, *prov, touched_rows, scratch);
  // The assembly also finishes aggregating the born groups (their member
  // lists are left in scratch->born for the write-back below).
  VisData vis = AssembleDelta(c, table, *prov, scratch);

  // Write-back: touched rows are re-pointed from scratch, dirty groups
  // replaced wholesale, emptied slots freed, born groups allocated.
  if (table.num_rows() > prov->group_of_row.size()) {
    prov->group_of_row.resize(table.num_rows(), VisProvenance::kNoGroup);
  }
  for (size_t r : scratch->touched) {
    prov->group_of_row[r] = VisProvenance::kNoGroup;
  }
  for (size_t g : scratch->dirty.ids()) {
    prov->groups[g] = std::move(scratch->recomputed[g]);
    scratch->recomputed[g] = GroupState();
    if (prov->groups[g].rows.empty()) {
      prov->group_of_key.erase(prov->groups[g].label);
      prov->free_slots.push_back(g);
    } else {
      for (size_t r : prov->groups[g].rows) prov->group_of_row[r] = g;
    }
  }
  for (auto& [key, rows] : scratch->born) {
    GroupState state = Reaggregate(c, table, key, std::move(rows));
    size_t slot;
    if (!prov->free_slots.empty()) {
      slot = prov->free_slots.back();
      prov->free_slots.pop_back();
      prov->groups[slot] = std::move(state);
    } else {
      slot = prov->groups.size();
      prov->groups.push_back(std::move(state));
      if (scratch->recomputed.size() < prov->groups.size()) {
        scratch->recomputed.resize(prov->groups.size());
      }
    }
    for (size_t r : prov->groups[slot].rows) prov->group_of_row[r] = slot;
    prov->group_of_key.emplace(prov->groups[slot].label, slot);
  }
  return vis;
}

Result<VisData> ExecuteVqlText(const std::string& query_text,
                               const Table& table) {
  Result<VqlQuery> q = ParseVql(query_text);
  if (!q.ok()) return q.status();
  return ExecuteVql(q.value(), table);
}

}  // namespace visclean
