#include "vql/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/strings.h"
#include "vql/parser.h"

namespace visclean {

namespace {

// Evaluates one predicate against a cell. Null never satisfies.
bool EvalPredicate(const Predicate& p, const Value& cell) {
  if (cell.is_null()) return false;
  if (p.literal.is_number()) {
    double lit = p.literal.AsNumber();
    double v = cell.ToNumberOr(std::numeric_limits<double>::quiet_NaN());
    if (std::isnan(v)) return false;
    switch (p.op) {
      case CompareOp::kEq:
        return v == lit;
      case CompareOp::kLt:
        return v < lit;
      case CompareOp::kLe:
        return v <= lit;
      case CompareOp::kGe:
        return v >= lit;
      case CompareOp::kGt:
        return v > lit;
    }
    return false;
  }
  // String literal: compare display strings. Only `=` is meaningful for
  // categorical data; order comparisons use lexicographic order.
  std::string lhs = cell.ToDisplayString();
  const std::string& rhs = p.literal.AsString();
  switch (p.op) {
    case CompareOp::kEq:
      return EqualsIgnoreCase(lhs, rhs);
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
  }
  return false;
}

struct Accum {
  double sum = 0.0;
  size_t count = 0;
};

}  // namespace

Result<VisData> ExecuteVql(const VqlQuery& query, const Table& table) {
  const Schema& schema = table.schema();
  Result<size_t> x_col = schema.IndexOf(query.x_column);
  if (!x_col.ok()) return x_col.status();
  Result<size_t> y_col = schema.IndexOf(query.y_column);
  if (!y_col.ok()) return y_col.status();

  std::vector<size_t> pred_cols(query.predicates.size());
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    Result<size_t> c = schema.IndexOf(query.predicates[i].column);
    if (!c.ok()) return c.status();
    pred_cols[i] = c.value();
  }

  // Filter.
  std::vector<size_t> rows;
  for (size_t r : table.LiveRowIds()) {
    bool keep = true;
    for (size_t i = 0; i < query.predicates.size(); ++i) {
      if (!EvalPredicate(query.predicates[i], table.at(r, pred_cols[i]))) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(r);
  }

  VisData vis;
  vis.type = query.chart;
  vis.x_name = query.x_column;
  vis.y_name = query.y_column;

  // Internal points carry a numeric sort key for bins / numeric X.
  struct RawPoint {
    std::string label;
    double numeric_key;
    bool has_numeric_key;
    double y;
  };
  std::vector<RawPoint> raw;

  auto y_value = [&](size_t r) -> const Value& { return table.at(r, y_col.value()); };

  if (query.x_transform == XTransform::kNone) {
    // One mark per tuple (query types 1 & 2 of Table III).
    for (size_t r : rows) {
      const Value& xv = table.at(r, x_col.value());
      const Value& yv = y_value(r);
      double y;
      if (query.agg == AggFunc::kCount) {
        y = yv.is_null() ? 0.0 : 1.0;
      } else {
        if (yv.is_null()) continue;  // cannot plot a missing measure
        y = yv.ToNumberOr(0.0);
      }
      RawPoint p;
      p.label = xv.ToDisplayString();
      p.has_numeric_key = xv.is_number();
      p.numeric_key = p.has_numeric_key ? xv.AsNumber() : 0.0;
      p.y = y;
      raw.push_back(std::move(p));
    }
  } else {
    // GROUP or BIN: key -> accumulator.
    std::map<std::string, Accum> groups;
    std::map<std::string, double> numeric_keys;
    for (size_t r : rows) {
      const Value& xv = table.at(r, x_col.value());
      if (xv.is_null()) continue;  // missing X drops the tuple from X'
      std::string key;
      double numeric_key = 0.0;
      if (query.x_transform == XTransform::kGroup) {
        key = xv.ToDisplayString();
        numeric_key = xv.ToNumberOr(0.0);
      } else {
        double x = xv.ToNumberOr(std::numeric_limits<double>::quiet_NaN());
        if (std::isnan(x)) continue;
        double lo = std::floor(x / query.bin_interval) * query.bin_interval;
        key = StrFormat("[%g, %g)", lo, lo + query.bin_interval);
        numeric_key = lo;
      }
      Accum& acc = groups[key];
      numeric_keys[key] = numeric_key;
      const Value& yv = y_value(r);
      if (yv.is_null()) continue;  // SUM/AVG/COUNT all skip null measures
      acc.sum += yv.ToNumberOr(0.0);
      acc.count += 1;
    }
    for (const auto& [key, acc] : groups) {
      RawPoint p;
      p.label = key;
      p.numeric_key = numeric_keys[key];
      p.has_numeric_key = true;
      switch (query.agg) {
        case AggFunc::kSum:
          p.y = acc.sum;
          break;
        case AggFunc::kAvg:
          p.y = acc.count > 0 ? acc.sum / static_cast<double>(acc.count) : 0.0;
          break;
        case AggFunc::kCount:
          p.y = static_cast<double>(acc.count);
          break;
        case AggFunc::kNone:
          // Grouping without an aggregate defaults to SUM (a bar per group
          // needs a single measure).
          p.y = acc.sum;
          break;
      }
      raw.push_back(std::move(p));
    }
  }

  // Sort.
  bool x_numeric = !raw.empty() &&
                   std::all_of(raw.begin(), raw.end(),
                               [](const RawPoint& p) { return p.has_numeric_key; });
  auto cmp_x = [&](const RawPoint& a, const RawPoint& b) {
    if (x_numeric && a.numeric_key != b.numeric_key)
      return a.numeric_key < b.numeric_key;
    return a.label < b.label;
  };
  if (query.sort_key == SortKey::kY) {
    std::stable_sort(raw.begin(), raw.end(),
                     [&](const RawPoint& a, const RawPoint& b) {
                       if (a.y != b.y) {
                         return query.sort_order == SortOrder::kAsc ? a.y < b.y
                                                                    : a.y > b.y;
                       }
                       return cmp_x(a, b);  // deterministic ties
                     });
  } else if (query.sort_key == SortKey::kX) {
    std::stable_sort(raw.begin(), raw.end(),
                     [&](const RawPoint& a, const RawPoint& b) {
                       return query.sort_order == SortOrder::kAsc ? cmp_x(a, b)
                                                                  : cmp_x(b, a);
                     });
  } else if (query.x_transform != XTransform::kNone) {
    // Deterministic default order for grouped output.
    std::stable_sort(raw.begin(), raw.end(), cmp_x);
  }

  // Limit.
  if (query.limit >= 0 && raw.size() > static_cast<size_t>(query.limit)) {
    raw.resize(static_cast<size_t>(query.limit));
  }

  vis.points.reserve(raw.size());
  for (RawPoint& p : raw) {
    vis.points.push_back({std::move(p.label), p.y});
  }
  return vis;
}

Result<VisData> ExecuteVqlText(const std::string& query_text,
                               const Table& table) {
  Result<VqlQuery> q = ParseVql(query_text);
  if (!q.ok()) return q.status();
  return ExecuteVql(q.value(), table);
}

}  // namespace visclean
