// Evaluates a VqlQuery against a Table, producing VisData.
#ifndef VISCLEAN_VQL_EXECUTOR_H_
#define VISCLEAN_VQL_EXECUTOR_H_

#include "common/status.h"
#include "data/table.h"
#include "dist/vis_data.h"
#include "vql/ast.h"

namespace visclean {

/// \brief Renders `query` over the live rows of `table`.
///
/// Semantics:
///  * WHERE: conjunctive; numeric comparisons when the literal is numeric
///    (null cells never satisfy a predicate), exact case-insensitive string
///    equality for categorical `=` — so attribute-level duplicates like
///    "SIGMOD Conf." do NOT match `Venue = 'SIGMOD'`, reproducing the dirty
///    behaviour of Q7 in the paper.
///  * GROUP(X): one point per distinct display string of X (null X grouped
///    under the empty label only when no transform is active; dropped when
///    grouping).
///  * BIN(X): numeric X binned into [k*w, (k+1)*w); null/non-numeric dropped.
///  * AGG: SUM/AVG skip null Y cells; COUNT counts non-null Y cells.
///  * SORT X: numeric-aware ascending/descending; SORT Y: by value; group
///    keys are used as a deterministic tiebreaker.
///  * LIMIT K keeps the first K points after sorting.
///
/// Errors when a referenced column is missing or types are unusable.
Result<VisData> ExecuteVql(const VqlQuery& query, const Table& table);

/// Parses and executes in one step.
Result<VisData> ExecuteVqlText(const std::string& query_text,
                               const Table& table);

}  // namespace visclean

#endif  // VISCLEAN_VQL_EXECUTOR_H_
