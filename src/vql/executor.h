// Evaluates a VqlQuery against a Table, producing VisData.
#ifndef VISCLEAN_VQL_EXECUTOR_H_
#define VISCLEAN_VQL_EXECUTOR_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "dist/dirty_set.h"
#include "dist/vis_data.h"
#include "vql/ast.h"

namespace visclean {

/// \brief Renders `query` over the live rows of `table`.
///
/// Semantics:
///  * WHERE: conjunctive; numeric comparisons when the literal is numeric
///    (null cells never satisfy a predicate), exact case-insensitive string
///    equality for categorical `=` — so attribute-level duplicates like
///    "SIGMOD Conf." do NOT match `Venue = 'SIGMOD'`, reproducing the dirty
///    behaviour of Q7 in the paper.
///  * GROUP(X): one point per distinct display string of X (null X grouped
///    under the empty label only when no transform is active; dropped when
///    grouping).
///  * BIN(X): numeric X binned into [k*w, (k+1)*w); null/non-numeric dropped.
///  * AGG: SUM/AVG skip null Y cells; COUNT counts non-null Y cells.
///  * SORT X: numeric-aware ascending/descending; SORT Y: by value; group
///    keys are used as a deterministic tiebreaker.
///  * LIMIT K keeps the first K points after sorting.
///
/// Errors when a referenced column is missing or types are unusable.
Result<VisData> ExecuteVql(const VqlQuery& query, const Table& table);

/// Parses and executes in one step.
Result<VisData> ExecuteVqlText(const std::string& query_text,
                               const Table& table);

// ---------------------------------------------------- incremental render --
//
// The benefit model evaluates hundreds of speculative repairs per iteration,
// each touching a handful of rows. Rendering Q(D) from scratch per candidate
// is O(|D|) each time; the functions below make it O(|touched groups|) by
// maintaining tuple->group provenance (VisProvenance, dist/vis_data.h).
//
// Bit-identity contract: the full render aggregates each group over its
// contributing rows in ascending id order, and the final SORT comparators
// are strict total orders over grouped output (labels are unique, every
// grouped point carries a numeric key). Re-aggregating a dirty group over
// its ascending member list therefore reproduces the exact float bits a full
// render would produce, and assembly order cannot change the sorted result.

/// \brief Scratch buffers for one delta evaluation; reuse across calls to
/// avoid per-candidate allocation. Each worker thread owns one.
struct DeltaScratch {
  DirtySet dirty;                        ///< dirty baseline group slots
  std::vector<size_t> touched;           ///< sorted, deduped touched rows
  std::vector<GroupState> recomputed;    ///< slot -> recomputed state (dirty)
  std::map<size_t, std::vector<size_t>> adds;       ///< slot -> joining rows
  std::map<std::string, std::vector<size_t>> born;  ///< new key -> rows
};

/// Full render that additionally builds the tuple->group provenance index.
/// `prov->supported` ends up true only for GROUP/BIN queries; per-tuple
/// queries leave it false and callers must use full renders.
Result<VisData> ExecuteVqlIndexed(const VqlQuery& query, const Table& table,
                                  VisProvenance* prov);

/// \brief Speculative incremental render: the table has diverged from the
/// baseline captured in `prov` on exactly `touched_rows` (dups/unordered ok).
///
/// Neither `prov` nor the baseline is modified — callers roll the table back
/// afterwards and reuse the same baseline for the next candidate. Falls back
/// to a full render when `prov` is unsupported; renders empty on execution
/// error (matching the benefit model's convention).
VisData ExecuteVqlDelta(const VqlQuery& query, const Table& table,
                        const VisProvenance& prov,
                        const std::vector<size_t>& touched_rows,
                        DeltaScratch* scratch);

/// \brief Accepts a repair: folds `touched_rows` into `prov` in place so it
/// describes the table's current state, and returns the updated render.
/// Emptied groups park their slots on the free list; new groups reuse them.
VisData CommitVqlDelta(const VqlQuery& query, const Table& table,
                       const std::vector<size_t>& touched_rows,
                       VisProvenance* prov, DeltaScratch* scratch);

}  // namespace visclean

#endif  // VISCLEAN_VQL_EXECUTOR_H_
