#include "vql/vega_export.h"

#include "common/json_writer.h"

namespace visclean {

namespace {

void WriteSpec(JsonWriter* json, const VisData& vis,
               const VegaExportOptions& options, const std::string& x_title,
               const std::string& y_title) {
  json->BeginObject();
  json->Key("$schema");
  json->String("https://vega.github.io/schema/vega-lite/v5.json");
  if (!options.title.empty()) {
    json->Key("title");
    json->String(options.title);
  }
  json->Key("width");
  json->Int(options.width);
  json->Key("height");
  json->Int(options.height);

  json->Key("data");
  json->BeginObject();
  json->Key("values");
  json->BeginArray();
  for (const VisPoint& p : vis.points) {
    json->BeginObject();
    json->Key("x");
    json->String(p.x);
    json->Key("y");
    json->Number(p.y);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();

  json->Key("mark");
  json->String(vis.type == ChartType::kBar ? "bar" : "arc");

  json->Key("encoding");
  json->BeginObject();
  if (vis.type == ChartType::kBar) {
    json->Key("x");
    json->BeginObject();
    json->Key("field");
    json->String("x");
    json->Key("type");
    json->String("nominal");
    json->Key("sort");
    json->Null();  // keep the executor's SORT order
    if (!x_title.empty()) {
      json->Key("title");
      json->String(x_title);
    }
    json->EndObject();
    json->Key("y");
    json->BeginObject();
    json->Key("field");
    json->String("y");
    json->Key("type");
    json->String("quantitative");
    if (!y_title.empty()) {
      json->Key("title");
      json->String(y_title);
    }
    json->EndObject();
  } else {
    json->Key("theta");
    json->BeginObject();
    json->Key("field");
    json->String("y");
    json->Key("type");
    json->String("quantitative");
    json->EndObject();
    json->Key("color");
    json->BeginObject();
    json->Key("field");
    json->String("x");
    json->Key("type");
    json->String("nominal");
    if (!x_title.empty()) {
      json->Key("title");
      json->String(x_title);
    }
    json->EndObject();
  }
  json->EndObject();

  json->EndObject();
}

std::string AggName(AggFunc agg, const std::string& column) {
  switch (agg) {
    case AggFunc::kSum:
      return "SUM(" + column + ")";
    case AggFunc::kAvg:
      return "AVG(" + column + ")";
    case AggFunc::kCount:
      return "COUNT(" + column + ")";
    case AggFunc::kNone:
      return column;
  }
  return column;
}

}  // namespace

std::string ToVegaLite(const VisData& vis, const VegaExportOptions& options) {
  JsonWriter json = options.pretty ? JsonWriter::Pretty() : JsonWriter();
  WriteSpec(&json, vis, options, vis.x_name, vis.y_name);
  return json.TakeString();
}

std::string ToVegaLite(const VisData& vis, const VqlQuery& query,
                       const VegaExportOptions& options) {
  VegaExportOptions with_title = options;
  if (with_title.title.empty()) {
    with_title.title =
        AggName(query.agg, query.y_column) + " by " + query.x_column;
  }
  JsonWriter json = options.pretty ? JsonWriter::Pretty() : JsonWriter();
  WriteSpec(&json, vis, with_title, query.x_column,
            AggName(query.agg, query.y_column));
  return json.TakeString();
}

}  // namespace visclean
