#include "clean/missing_detector.h"

#include <algorithm>
#include <set>
#include <string>

#include "clean/detector.h"
#include "ml/knn.h"
#include "text/tokenize.h"

namespace visclean {

std::vector<MQuestion> DetectMissing(const Table& table, size_t column,
                                     const MissingDetectorOptions& options) {
  std::vector<size_t> rows = table.LiveRowIds();

  std::vector<size_t> missing_rows;
  for (size_t r : rows) {
    if (table.at(r, column).is_null()) missing_rows.push_back(r);
  }
  if (missing_rows.empty()) return {};
  if (options.max_questions > 0 && missing_rows.size() > options.max_questions) {
    missing_rows.resize(options.max_questions);
  }

  // Column mean fallback when no neighbor carries a value.
  double sum = 0.0;
  size_t count = 0;
  for (size_t r : rows) {
    const Value& v = table.at(r, column);
    if (!v.is_null()) {
      sum += v.ToNumberOr(0.0);
      ++count;
    }
  }
  double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;

  // Token sets of every row for the string-Jaccard kNN of Section IV,
  // computed once (queries share the corpus).
  std::vector<std::set<std::string>> row_tokens;
  row_tokens.reserve(rows.size());
  for (size_t r : rows) {
    row_tokens.push_back(TokenSet(WordTokens(RowAsString(table, r))));
  }

  std::vector<MQuestion> out;
  out.reserve(missing_rows.size());
  for (size_t r : missing_rows) {
    // Position of r within `rows` for self-exclusion.
    size_t pos = static_cast<size_t>(
        std::lower_bound(rows.begin(), rows.end(), r) - rows.begin());
    // Ask for extra neighbors; some may miss the value themselves.
    std::vector<Neighbor> neighbors = NearestNeighborsByTokens(
        row_tokens, row_tokens[pos], options.k * 3,
        static_cast<ptrdiff_t>(pos));
    double nsum = 0.0;
    size_t nused = 0;
    for (const Neighbor& nb : neighbors) {
      const Value& v = table.at(rows[nb.index], column);
      if (v.is_null()) continue;
      nsum += v.ToNumberOr(0.0);
      if (++nused == options.k) break;
    }
    MQuestion q;
    q.row = r;
    q.column = column;
    q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : mean;
    out.push_back(q);
  }
  return out;
}

// ---------------------------------------------------------- MissingDetector

void MissingDetector::Configure(size_t column,
                                const MissingDetectorOptions& options,
                                RowTokenCache* tokens) {
  if (column != column_ || options.k != options_.k ||
      options.max_questions != options_.max_questions) {
    knn_.Clear();
    questions_.clear();
  }
  column_ = column;
  options_ = options;
  tokens_ = tokens;
}

void MissingDetector::FullScan(const Table& table, const KernelEnv& env) {
  knn_.Clear();
  Generate(table, env);
}

void MissingDetector::Update(const Table& table,
                             const std::vector<size_t>& mutated_rows,
                             const KernelEnv& env) {
  knn_.BeginEpoch(mutated_rows);
  Generate(table, env);
}

void MissingDetector::Generate(const Table& table, const KernelEnv& env) {
  std::vector<MQuestion> previous = std::move(questions_);
  questions_.clear();

  std::vector<size_t> rows = table.LiveRowIds();
  std::vector<size_t> missing_rows;
  for (size_t r : rows) {
    if (table.at(r, column_).is_null()) missing_rows.push_back(r);
  }
  if (!missing_rows.empty()) {
    if (options_.max_questions > 0 &&
        missing_rows.size() > options_.max_questions) {
      missing_rows.resize(options_.max_questions);
    }

    double sum = 0.0;
    size_t count = 0;
    for (size_t r : rows) {
      const Value& v = table.at(r, column_);
      if (!v.is_null()) {
        sum += v.ToNumberOr(0.0);
        ++count;
      }
    }
    double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;

    // Corpus = every live row (ascending ids), token sets from the shared
    // cache (only rows without a cached set are tokenized).
    tokens_->Ensure(table, rows, env);
    std::vector<const std::set<std::string>*> corpus_tokens;
    corpus_tokens.reserve(rows.size());
    for (size_t r : rows) corpus_tokens.push_back(&tokens_->tokens(r));

    // Ask for extra neighbors; some may miss the value themselves.
    std::vector<std::vector<Neighbor>> neighbor_lists = knn_.BatchQuery(
        missing_rows, options_.k * 3, rows, corpus_tokens, env);

    questions_.reserve(missing_rows.size());
    for (size_t qi = 0; qi < missing_rows.size(); ++qi) {
      double nsum = 0.0;
      size_t nused = 0;
      for (const Neighbor& nb : neighbor_lists[qi]) {
        const Value& v = table.at(nb.index, column_);
        if (v.is_null()) continue;
        nsum += v.ToNumberOr(0.0);
        if (++nused == options_.k) break;
      }
      MQuestion q;
      q.row = missing_rows[qi];
      q.column = column_;
      q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : mean;
      questions_.push_back(q);
    }
  }

  // Delta vs the previous scan (field-wise; rows ascend in both lists).
  auto same = [](const MQuestion& a, const MQuestion& b) {
    return a.row == b.row && a.column == b.column &&
           a.suggested == b.suggested;
  };
  added_.clear();
  retracted_.clear();
  for (const MQuestion& q : questions_) {
    bool found = false;
    for (const MQuestion& p : previous) {
      if (same(p, q)) {
        found = true;
        break;
      }
    }
    if (!found) added_.push_back(q);
  }
  for (const MQuestion& p : previous) {
    bool found = false;
    for (const MQuestion& q : questions_) {
      if (same(p, q)) {
        found = true;
        break;
      }
    }
    if (!found) retracted_.push_back(p);
  }
}

}  // namespace visclean
