#include "clean/missing_detector.h"

#include <algorithm>
#include <set>
#include <string>

#include "ml/knn.h"
#include "text/tokenize.h"

namespace visclean {

namespace {

// Concatenated display strings of every column of the row.
std::string RowAsString(const Table& table, size_t row) {
  std::string out;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) out += ' ';
    out += table.at(row, c).ToDisplayString();
  }
  return out;
}

}  // namespace

std::vector<MQuestion> DetectMissing(const Table& table, size_t column,
                                     const MissingDetectorOptions& options) {
  std::vector<size_t> rows = table.LiveRowIds();

  std::vector<size_t> missing_rows;
  for (size_t r : rows) {
    if (table.at(r, column).is_null()) missing_rows.push_back(r);
  }
  if (missing_rows.empty()) return {};
  if (options.max_questions > 0 && missing_rows.size() > options.max_questions) {
    missing_rows.resize(options.max_questions);
  }

  // Column mean fallback when no neighbor carries a value.
  double sum = 0.0;
  size_t count = 0;
  for (size_t r : rows) {
    const Value& v = table.at(r, column);
    if (!v.is_null()) {
      sum += v.ToNumberOr(0.0);
      ++count;
    }
  }
  double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;

  // Token sets of every row for the string-Jaccard kNN of Section IV,
  // computed once (queries share the corpus).
  std::vector<std::set<std::string>> row_tokens;
  row_tokens.reserve(rows.size());
  for (size_t r : rows) {
    row_tokens.push_back(TokenSet(WordTokens(RowAsString(table, r))));
  }

  std::vector<MQuestion> out;
  out.reserve(missing_rows.size());
  for (size_t r : missing_rows) {
    // Position of r within `rows` for self-exclusion.
    size_t pos = static_cast<size_t>(
        std::lower_bound(rows.begin(), rows.end(), r) - rows.begin());
    // Ask for extra neighbors; some may miss the value themselves.
    std::vector<Neighbor> neighbors = NearestNeighborsByTokens(
        row_tokens, row_tokens[pos], options.k * 3,
        static_cast<ptrdiff_t>(pos));
    double nsum = 0.0;
    size_t nused = 0;
    for (const Neighbor& nb : neighbors) {
      const Value& v = table.at(rows[nb.index], column);
      if (v.is_null()) continue;
      nsum += v.ToNumberOr(0.0);
      if (++nused == options.k) break;
    }
    MQuestion q;
    q.row = r;
    q.column = column;
    q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : mean;
    out.push_back(q);
  }
  return out;
}

}  // namespace visclean
