// Q_O generation: kNN outlier detection on the Y column (Section IV).
#ifndef VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_
#define VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_

#include <vector>

#include "clean/detector.h"
#include "clean/question.h"
#include "data/table.h"
#include "ml/knn.h"

namespace visclean {

class ThreadPool;

/// \brief Options for outlier detection.
struct OutlierDetectorOptions {
  size_t k = 5;              ///< the k of the k-th-nearest-distance score
  size_t max_questions = 50; ///< how many top-scored values become O-questions
  /// A value only becomes a question when its score exceeds this multiple of
  /// the median score (guards against flagging normal spread).
  double score_ratio = 4.0;
  size_t impute_k = 5;       ///< neighbors averaged for the suggested repair
};

/// \brief O-questions for `column`: values whose kNN outlier score
/// (k-th smallest |v - other|; Ramaswamy et al.) is among the largest.
///
/// The suggested repair averages the column values of the k tuples most
/// similar to the outlier's tuple (same kNN recipe as imputation), so a
/// misplaced decimal like 1740 for a paper with duplicates at 174 is pulled
/// back to its cluster's level.
std::vector<OQuestion> DetectOutliers(const Table& table, size_t column,
                                      const OutlierDetectorOptions& options = {});

/// \brief Incremental O-question detector behind the Detector interface.
///
/// The global score pass (KnnOutlierScores over the non-null values, median
/// cutoff, ranking) is cheap and recomputed every scan; the expensive
/// per-question repair suggestion — a token-kNN over the non-null rows —
/// comes from caches invalidated only for dirty rows. questions() is
/// bit-identical to DetectOutliers on the current table.
class OutlierDetector : public Detector {
 public:
  /// Binds the target column, options, and the shared token cache.
  void Configure(size_t column, const OutlierDetectorOptions& options,
                 RowTokenCache* tokens);

  void FullScan(const Table& table, const KernelEnv& env) override;
  void Update(const Table& table, const std::vector<size_t>& mutated_rows,
              const KernelEnv& env) override;
  using Detector::FullScan;
  using Detector::Update;

  const std::vector<OQuestion>& questions() const { return questions_; }
  /// Questions that (dis)appeared in the last scan, in question order.
  const std::vector<OQuestion>& added() const { return added_; }
  const std::vector<OQuestion>& retracted() const { return retracted_; }

  const TokenKnnCache& knn() const { return knn_; }

 private:
  void Generate(const Table& table, const KernelEnv& env);

  size_t column_ = 0;
  OutlierDetectorOptions options_;
  RowTokenCache* tokens_ = nullptr;
  TokenKnnCache knn_;
  std::vector<OQuestion> questions_, added_, retracted_;
};

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_
