// Q_O generation: kNN outlier detection on the Y column (Section IV).
#ifndef VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_
#define VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_

#include <vector>

#include "clean/question.h"
#include "data/table.h"

namespace visclean {

/// \brief Options for outlier detection.
struct OutlierDetectorOptions {
  size_t k = 5;              ///< the k of the k-th-nearest-distance score
  size_t max_questions = 50; ///< how many top-scored values become O-questions
  /// A value only becomes a question when its score exceeds this multiple of
  /// the median score (guards against flagging normal spread).
  double score_ratio = 4.0;
  size_t impute_k = 5;       ///< neighbors averaged for the suggested repair
};

/// \brief O-questions for `column`: values whose kNN outlier score
/// (k-th smallest |v - other|; Ramaswamy et al.) is among the largest.
///
/// The suggested repair averages the column values of the k tuples most
/// similar to the outlier's tuple (same kNN recipe as imputation), so a
/// misplaced decimal like 1740 for a paper with duplicates at 174 is pulled
/// back to its cluster's level.
std::vector<OQuestion> DetectOutliers(const Table& table, size_t column,
                                      const OutlierDetectorOptions& options = {});

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_OUTLIER_DETECTOR_H_
