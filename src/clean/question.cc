// question.h is header-only; this translation unit exists so the build
// exercises the header's self-containedness.
#include "clean/question.h"
