// The common interface of the incremental error detectors (PR 3).
//
// Every detection stage input — blocking candidate pairs, M-questions,
// O-questions — is produced by a Detector that supports two entry points:
// FullScan rebuilds the result from the whole table, Update folds in only
// the rows the mutation journal reported dirty since the previous scan.
// Both paths must produce bit-identical results; the differential suite
// (tests/detect_differential_test.cc) enforces this.
#ifndef VISCLEAN_CLEAN_DETECTOR_H_
#define VISCLEAN_CLEAN_DETECTOR_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/kernel_scheduler.h"
#include "data/table.h"

namespace visclean {

/// \brief Journal-driven detector: full rebuild or per-row delta.
///
/// Contract: after either call the detector's published result equals what
/// FullScan alone would produce on the current table. Update may only be
/// called when every mutation since the last scan is covered by
/// `mutated_rows` (the caller reads them from Table::MutatedRowsSince).
/// `env` carries the optional pool / cross-session scheduler / iteration
/// arena; none of them may change any published value, only the wall time
/// (deterministic index-ordered merges) and where scratch lives.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Rebuilds all derived state and results from `table`.
  virtual void FullScan(const Table& table, const KernelEnv& env) = 0;

  /// Folds the mutated rows (sorted, deduplicated ids — including appended,
  /// killed and revived rows) into the cached state and refreshes results.
  /// Precondition: shared caches the detector was configured with (the
  /// RowTokenCache) have already been Invalidate()d for `mutated_rows` by
  /// their owner — DetectionCache does this once per iteration for all
  /// detectors sharing the cache.
  virtual void Update(const Table& table,
                      const std::vector<size_t>& mutated_rows,
                      const KernelEnv& env) = 0;

  /// Pool-only convenience shims (tests, standalone callers). Derived
  /// classes re-expose them with `using Detector::FullScan/Update;`.
  void FullScan(const Table& table, ThreadPool* pool) {
    FullScan(table, KernelEnv{pool, nullptr, nullptr});
  }
  void Update(const Table& table, const std::vector<size_t>& mutated_rows,
              ThreadPool* pool) {
    Update(table, mutated_rows, KernelEnv{pool, nullptr, nullptr});
  }
};

/// \brief Cross-iteration cache of per-row word-token sets.
///
/// Both kNN detectors tokenize the concatenation of every attribute of a
/// row (the paper's Q_M/Q_O recipe). The sets are pure functions of the row
/// values, so they are shared between detectors and survive across
/// iterations; Invalidate drops exactly the dirty rows.
class RowTokenCache {
 public:
  /// Drops every cached set (full-rescan path without a known dirty set).
  void Clear() { tokens_.clear(); }

  /// Drops the sets of the given rows only.
  void Invalidate(const std::vector<size_t>& dirty_rows);

  /// Ensures a token set exists for every row in `rows`; missing ones are
  /// computed (routed through `env`, merged by index).
  void Ensure(const Table& table, const std::vector<size_t>& rows,
              const KernelEnv& env);

  /// Pool-only convenience overload.
  void Ensure(const Table& table, const std::vector<size_t>& rows,
              ThreadPool* pool) {
    Ensure(table, rows, KernelEnv{pool, nullptr, nullptr});
  }

  /// Token set of a row previously passed to Ensure.
  const std::set<std::string>& tokens(size_t row) const {
    return tokens_.at(row);
  }

  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<size_t, std::set<std::string>> tokens_;
};

/// Concatenated display strings of every column of the row — the shared
/// string representation behind both kNN detectors.
std::string RowAsString(const Table& table, size_t row);

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_DETECTOR_H_
