// Algorithm 1 (A-QUESTIONSGENERATION): attribute-level duplicate candidates
// from (Strategy 1) golden-record creation inside EM clusters and
// (Strategy 2) a string-similarity join across clusters.
#ifndef VISCLEAN_CLEAN_A_QUESTION_GEN_H_
#define VISCLEAN_CLEAN_A_QUESTION_GEN_H_

#include <vector>

#include "clean/question.h"
#include "data/table.h"
#include "text/sim_join.h"

namespace visclean {

class ThreadPool;

/// \brief Options for A-question generation.
struct AQuestionOptions {
  double lambda = 0.5;        ///< similarity threshold of the join (λ)
  size_t max_questions = 400; ///< cap on emitted questions
};

/// \brief Runs Algorithm 1 on `column` with the given clusters.
///
/// Strategy 1: inside every multi-member cluster, each variant spelling
/// pairs with the cluster's elected canonical spelling.
/// Strategy 2: distinct spellings from *different* clusters join when their
/// token-Jaccard similarity exceeds λ — catching synonyms (SIGMOD'13 <->
/// SIGMOD) that no single cluster witnesses.
/// Duplicates (unordered spelling pairs) are emitted once, highest
/// similarity kept, ordered by descending similarity.
///
/// `memo` (optional) replays the Strategy-2 self-join when the distinct
/// spellings are unchanged since the previous call; `pool` (optional) fans
/// the join's probe side out. Neither changes the emitted questions.
std::vector<AQuestion> GenerateAQuestions(
    const Table& table, const std::vector<std::vector<size_t>>& clusters,
    size_t column, const AQuestionOptions& options = {},
    SimJoinMemo* memo = nullptr, ThreadPool* pool = nullptr);

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_A_QUESTION_GEN_H_
