// Algorithm 1 (A-QUESTIONSGENERATION): attribute-level duplicate candidates
// from (Strategy 1) golden-record creation inside EM clusters and
// (Strategy 2) a string-similarity join across clusters.
#ifndef VISCLEAN_CLEAN_A_QUESTION_GEN_H_
#define VISCLEAN_CLEAN_A_QUESTION_GEN_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "clean/question.h"
#include "data/table.h"
#include "text/sim_join.h"

namespace visclean {

class ThreadPool;

/// \brief Options for A-question generation.
struct AQuestionOptions {
  double lambda = 0.5;        ///< similarity threshold of the join (λ)
  size_t max_questions = 400; ///< cap on emitted questions
};

/// \brief Maintained inputs for Strategy 2, provided by the session's
/// ErgCache (core/erg_cache.h SyncSimJoin) on the incremental path.
///
/// `join` must be primed on the current distinct live spellings of the
/// column with threshold == lambda; `rows_of` returns the live rows
/// carrying a spelling (null when unknown) — the X value index's row sets.
/// Expressed as a callback so clean/ stays independent of core/.
struct MaintainedAJoin {
  const IncrementalSimJoin* join = nullptr;
  std::function<const std::set<size_t>*(const std::string&)> rows_of;
  /// Optional row -> cluster index (EntityClusters::cluster_of). When set
  /// (covering every table row), Strategy 2 reuses it instead of
  /// re-deriving the mapping from `clusters` on every call.
  const std::vector<size_t>* cluster_of = nullptr;
};

/// \brief Runs Algorithm 1 on `column` with the given clusters.
///
/// Strategy 1: inside every multi-member cluster, each variant spelling
/// pairs with the cluster's elected canonical spelling.
/// Strategy 2: distinct spellings from *different* clusters join when their
/// token-Jaccard similarity exceeds λ — catching synonyms (SIGMOD'13 <->
/// SIGMOD) that no single cluster witnesses.
/// Duplicates (unordered spelling pairs) are emitted once, highest
/// similarity kept, ordered by descending similarity.
///
/// With `maintained` (and a primed join), Strategy 2 reads the journal-
/// maintained self-join result and per-spelling row sets instead of
/// scanning the cluster rows and re-joining from scratch — O(pairs + k)
/// per call instead of O(rows + join). The emitted questions are
/// bit-identical: the join's item set is exactly the distinct live
/// spellings, its pair set matches SimilaritySelfJoin, and the spelling
/// frequencies / cluster sets derived from `rows_of` equal the scanned
/// ones. `pool` (optional) fans the scratch join's probe side out; neither
/// input changes the emitted questions.
std::vector<AQuestion> GenerateAQuestions(
    const Table& table, const std::vector<std::vector<size_t>>& clusters,
    size_t column, const AQuestionOptions& options = {},
    const MaintainedAJoin* maintained = nullptr, ThreadPool* pool = nullptr);

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_A_QUESTION_GEN_H_
