#include "clean/repair.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace visclean {

void UndoLog::RecordCell(size_t row, size_t col, Value old_value) {
  Entry e;
  e.row = row;
  e.col = col;
  e.old_value = std::move(old_value);
  entries_.push_back(std::move(e));
}

void UndoLog::RecordDeath(size_t row) {
  Entry e;
  e.is_death = true;
  e.row = row;
  entries_.push_back(std::move(e));
}

void UndoLog::CollectTouchedRows(std::vector<size_t>* rows) const {
  rows->reserve(rows->size() + entries_.size());
  for (const Entry& e : entries_) rows->push_back(e.row);
}

void UndoLog::Rollback(Table* table) {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->is_death) {
      table->Revive(it->row);
    } else {
      table->Set(it->row, it->col, std::move(it->old_value));
    }
  }
  entries_.clear();
}

size_t ApplyTransformation(Table* table, size_t column, const std::string& from,
                           const std::string& to, UndoLog* undo) {
  size_t changed = 0;
  for (size_t r : table->LiveRowIds()) {
    const Value& v = table->at(r, column);
    if (v.is_null()) continue;
    if (v.ToDisplayString() == from) {
      if (undo != nullptr) undo->RecordCell(r, column, v);
      table->Set(r, column, Value::String(to));
      ++changed;
    }
  }
  return changed;
}

void ApplyCellRepair(Table* table, size_t row, size_t column, double value,
                     UndoLog* undo) {
  if (undo != nullptr) undo->RecordCell(row, column, table->at(row, column));
  table->Set(row, column, Value::Number(value));
}

size_t MergeRows(Table* table, const std::vector<size_t>& rows,
                 UndoLog* undo) {
  std::vector<size_t> live;
  for (size_t r : rows) {
    if (!table->is_dead(r)) live.push_back(r);
  }
  VC_CHECK(!live.empty(), "MergeRows needs at least one live row");
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  size_t survivor = live.front();
  if (live.size() == 1) return survivor;

  const Schema& schema = table->schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    // Gather the non-null values of this column across the cluster.
    std::map<std::string, size_t> votes;
    std::vector<double> numbers;
    std::string longest;
    for (size_t r : live) {
      const Value& v = table->at(r, c);
      if (v.is_null()) continue;
      std::string s = v.ToDisplayString();
      ++votes[s];
      if (s.size() > longest.size()) longest = s;
      if (v.is_number()) numbers.push_back(v.AsNumber());
    }
    if (votes.empty()) continue;  // all null: survivor keeps its null

    // Strict majority (more than half of the non-null votes) wins outright.
    std::string majority;
    size_t best = 0;
    size_t total_votes = 0;
    for (const auto& [s, n] : votes) {
      total_votes += n;
      if (n > best) {
        best = n;
        majority = s;
      }
    }
    Value consolidated;
    bool has_majority = best * 2 > total_votes;
    if (has_majority) {
      // Preserve the numeric type when the majority value is numeric.
      if (schema.column(c).type == ColumnType::kNumeric) {
        consolidated = Value::Number(std::strtod(majority.c_str(), nullptr));
      } else {
        consolidated = Value::String(majority);
      }
    } else if (schema.column(c).type == ColumnType::kNumeric &&
               !numbers.empty()) {
      // Robust mean: data-entry outliers (decimal shifts, additive noise)
      // are overwhelmingly upward, so when the spread is extreme average
      // only the values within 5x of the minimum magnitude. Legitimate
      // source disagreement (42 vs 44) still averages to 43 as in the
      // paper's ground truth.
      double min_mag = std::fabs(numbers[0]);
      for (double v : numbers) min_mag = std::min(min_mag, std::fabs(v));
      double cap = 5.0 * std::max(min_mag, 1.0);
      double sum = 0.0;
      size_t used = 0;
      for (double v : numbers) {
        if (std::fabs(v) <= cap) {
          sum += v;
          ++used;
        }
      }
      if (used == 0) {
        for (double v : numbers) sum += v;
        used = numbers.size();
      }
      consolidated = Value::Number(sum / static_cast<double>(used));
    } else {
      // No majority among text spellings: keep the survivor's own value
      // (stability — relabeling cells without user evidence breaks
      // selection predicates); fall back to the longest spelling only when
      // the survivor's cell is null.
      const Value& own = table->at(survivor, c);
      consolidated = own.is_null() ? Value::String(longest) : own;
    }
    const Value& old = table->at(survivor, c);
    if (old != consolidated) {
      if (undo != nullptr) undo->RecordCell(survivor, c, old);
      table->Set(survivor, c, consolidated);
    }
  }

  for (size_t i = 1; i < live.size(); ++i) {
    if (undo != nullptr) undo->RecordDeath(live[i]);
    table->MarkDead(live[i]);
  }
  return survivor;
}

}  // namespace visclean
