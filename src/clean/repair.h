// Repair operators: how user answers mutate the dataset (framework step 6).
// Every operator also has an Undo record so the benefit model can repair
// speculatively and roll back without cloning the table per edge.
#ifndef VISCLEAN_CLEAN_REPAIR_H_
#define VISCLEAN_CLEAN_REPAIR_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace visclean {

/// \brief Reversible log of table mutations.
///
/// Usage: pass an UndoLog to the Apply* functions, then call Rollback to
/// restore the table exactly. Rollback replays in reverse order.
class UndoLog {
 public:
  /// Records that (row, col) held `old_value` before a Set.
  void RecordCell(size_t row, size_t col, Value old_value);
  /// Records that `row` was alive before a MarkDead.
  void RecordDeath(size_t row);

  /// Restores `table` and clears the log.
  void Rollback(Table* table);

  /// Appends the row id of every logged mutation to `rows` (duplicates kept;
  /// callers sort/dedup). Called before Rollback, this is exactly the set of
  /// rows on which the table diverges from its pre-repair state — what the
  /// incremental benefit engine feeds to ExecuteVqlDelta.
  void CollectTouchedRows(std::vector<size_t>* rows) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    bool is_death = false;
    size_t row = 0;
    size_t col = 0;
    Value old_value;
  };
  std::vector<Entry> entries_;
};

/// Replaces every live cell of `column` whose display string equals `from`
/// with String(`to`) — the attribute-standardization repair. Returns the
/// number of cells changed.
size_t ApplyTransformation(Table* table, size_t column, const std::string& from,
                           const std::string& to, UndoLog* undo = nullptr);

/// Imputes Number(`value`) into a (row, column) that should hold a number.
void ApplyCellRepair(Table* table, size_t row, size_t column, double value,
                     UndoLog* undo = nullptr);

/// \brief Merges duplicate rows into the smallest id (the survivor):
/// consolidates every column onto the survivor and tombstones the rest.
///
/// Consolidation per column: majority display value when one exists;
/// numeric columns without a majority take the mean of non-null values
/// (the paper's ground truth consolidates 42/44 to 43 and 174/1740/174 to
/// 174); text columns fall back to the longest spelling. Returns the
/// survivor row id. `rows` must contain >= 1 live row.
size_t MergeRows(Table* table, const std::vector<size_t>& rows,
                 UndoLog* undo = nullptr);

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_REPAIR_H_
