#include "clean/a_question_gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "em/golden_record.h"
#include "text/sim_join.h"

namespace visclean {

std::vector<AQuestion> GenerateAQuestions(
    const Table& table, const std::vector<std::vector<size_t>>& clusters,
    size_t column, const AQuestionOptions& options,
    const MaintainedAJoin* maintained, ThreadPool* pool) {
  // Unordered spelling pair -> best question seen.
  std::map<std::pair<std::string, std::string>, AQuestion> dedup;
  auto add = [&](const std::string& from, const std::string& to, double sim) {
    if (from == to) return;
    std::pair<std::string, std::string> key = std::minmax(from, to);
    auto it = dedup.find(key);
    if (it != dedup.end() && it->second.similarity >= sim) return;
    AQuestion q;
    q.column = column;
    q.value_a = from;
    q.value_b = to;
    q.similarity = sim;
    dedup[key] = std::move(q);
  };

  // Strategy 1: golden-record candidates inside clusters.
  for (const TransformationCandidate& cand :
       GoldenRecordCreation(table, clusters, column)) {
    // Within a cluster the tuples provably co-refer, so approval is near
    // certain regardless of string distance; floor the similarity.
    add(cand.from, cand.to, std::max(cand.similarity, 0.8));
  }

  // Strategy 2: cross-cluster similarity join over distinct spellings.
  // Consumes one joined pair: keep cross-cluster pairs only, standardize
  // toward the more frequent spelling.
  auto consume = [&](const std::string& va, const std::string& vb, double sim,
                     const std::set<size_t>& ca, const std::set<size_t>& cb,
                     size_t freq_a, size_t freq_b) {
    bool disjoint = true;
    for (size_t c : ca) {
      if (cb.count(c)) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) return;
    if (freq_b >= freq_a) {
      add(va, vb, sim);
    } else {
      add(vb, va, sim);
    }
  };

  if (maintained != nullptr && maintained->join != nullptr &&
      maintained->join->primed()) {
    // Maintained path: the join's items are the distinct live spellings and
    // its pairs match the scratch self-join; frequency and cluster sets come
    // from the maintained per-spelling row sets instead of a row scan.
    const std::vector<std::string>& values = maintained->join->items();
    const std::vector<SimJoinPair>& joined = maintained->join->Pairs();

    constexpr size_t kNoCluster = static_cast<size_t>(-1);
    std::vector<size_t> local_cluster_of;
    if (maintained->cluster_of == nullptr ||
        maintained->cluster_of->size() < table.num_rows()) {
      local_cluster_of.assign(table.num_rows(), kNoCluster);
      for (size_t ci = 0; ci < clusters.size(); ++ci) {
        for (size_t r : clusters[ci]) {
          if (r < local_cluster_of.size()) local_cluster_of[r] = ci;
        }
      }
    }
    const std::vector<size_t>& cluster_of =
        local_cluster_of.empty() && maintained->cluster_of != nullptr
            ? *maintained->cluster_of
            : local_cluster_of;
    std::map<std::string, std::set<size_t>> cluster_memo;
    auto clusters_of = [&](const std::string& s) -> const std::set<size_t>& {
      auto it = cluster_memo.find(s);
      if (it != cluster_memo.end()) return it->second;
      std::set<size_t> cs;
      const std::set<size_t>* rows = maintained->rows_of(s);
      if (rows != nullptr) {
        for (size_t r : *rows) {
          if (r < cluster_of.size() && cluster_of[r] != kNoCluster) {
            cs.insert(cluster_of[r]);
          }
        }
      }
      return cluster_memo.emplace(s, std::move(cs)).first->second;
    };
    auto frequency = [&](const std::string& s) -> size_t {
      const std::set<size_t>* rows = maintained->rows_of(s);
      return rows == nullptr ? 0 : rows->size();
    };
    for (const SimJoinPair& p : joined) {
      const std::string& va = values[p.left_index];
      const std::string& vb = values[p.right_index];
      consume(va, vb, p.similarity, clusters_of(va), clusters_of(vb),
              frequency(va), frequency(vb));
    }
  } else {
    // Scratch path: scan the cluster rows for the distinct spellings, their
    // frequencies and cluster sets, then self-join from scratch.
    std::map<std::string, std::set<size_t>> clusters_of;
    std::map<std::string, size_t> frequency;
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      for (size_t r : clusters[ci]) {
        if (table.is_dead(r)) continue;
        const Value& v = table.at(r, column);
        if (v.is_null()) continue;
        std::string s = v.ToDisplayString();
        clusters_of[s].insert(ci);
        ++frequency[s];
      }
    }
    std::vector<std::string> values;
    values.reserve(clusters_of.size());
    for (const auto& [v, cs] : clusters_of) values.push_back(v);

    SimJoinOptions join_options;
    join_options.threshold = options.lambda;
    std::vector<SimJoinPair> joined =
        SimilaritySelfJoin(values, join_options, pool);
    for (const SimJoinPair& p : joined) {
      const std::string& va = values[p.left_index];
      const std::string& vb = values[p.right_index];
      consume(va, vb, p.similarity, clusters_of[va], clusters_of[vb],
              frequency[va], frequency[vb]);
    }
  }

  std::vector<AQuestion> out;
  out.reserve(dedup.size());
  for (auto& [key, q] : dedup) out.push_back(std::move(q));
  std::sort(out.begin(), out.end(), [](const AQuestion& a, const AQuestion& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    if (a.value_a != b.value_a) return a.value_a < b.value_a;
    return a.value_b < b.value_b;
  });
  if (out.size() > options.max_questions) out.resize(options.max_questions);
  return out;
}

}  // namespace visclean
