#include "clean/a_question_gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "em/golden_record.h"
#include "text/sim_join.h"

namespace visclean {

std::vector<AQuestion> GenerateAQuestions(
    const Table& table, const std::vector<std::vector<size_t>>& clusters,
    size_t column, const AQuestionOptions& options, SimJoinMemo* memo,
    ThreadPool* pool) {
  // Unordered spelling pair -> best question seen.
  std::map<std::pair<std::string, std::string>, AQuestion> dedup;
  auto add = [&](const std::string& from, const std::string& to, double sim) {
    if (from == to) return;
    std::pair<std::string, std::string> key = std::minmax(from, to);
    auto it = dedup.find(key);
    if (it != dedup.end() && it->second.similarity >= sim) return;
    AQuestion q;
    q.column = column;
    q.value_a = from;
    q.value_b = to;
    q.similarity = sim;
    dedup[key] = std::move(q);
  };

  // Strategy 1: golden-record candidates inside clusters.
  for (const TransformationCandidate& cand :
       GoldenRecordCreation(table, clusters, column)) {
    // Within a cluster the tuples provably co-refer, so approval is near
    // certain regardless of string distance; floor the similarity.
    add(cand.from, cand.to, std::max(cand.similarity, 0.8));
  }

  // Strategy 2: cross-cluster similarity join over distinct spellings.
  // value -> clusters it occurs in, and global frequency (canonical vote).
  std::map<std::string, std::set<size_t>> clusters_of;
  std::map<std::string, size_t> frequency;
  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    for (size_t r : clusters[ci]) {
      if (table.is_dead(r)) continue;
      const Value& v = table.at(r, column);
      if (v.is_null()) continue;
      std::string s = v.ToDisplayString();
      clusters_of[s].insert(ci);
      ++frequency[s];
    }
  }
  std::vector<std::string> values;
  values.reserve(clusters_of.size());
  for (const auto& [v, cs] : clusters_of) values.push_back(v);

  SimJoinOptions join_options;
  join_options.threshold = options.lambda;
  const std::vector<SimJoinPair>& joined =
      memo != nullptr ? memo->SelfJoin(values, join_options, pool)
                      : SimilaritySelfJoin(values, join_options, pool);
  for (const SimJoinPair& p : joined) {
    const std::string& va = values[p.left_index];
    const std::string& vb = values[p.right_index];
    // Cross-cluster only: same-cluster pairs are Strategy 1's job.
    const std::set<size_t>& ca = clusters_of[va];
    const std::set<size_t>& cb = clusters_of[vb];
    bool disjoint = true;
    for (size_t c : ca) {
      if (cb.count(c)) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    // Standardize toward the more frequent spelling.
    if (frequency[vb] >= frequency[va]) {
      add(va, vb, p.similarity);
    } else {
      add(vb, va, p.similarity);
    }
  }

  std::vector<AQuestion> out;
  out.reserve(dedup.size());
  for (auto& [key, q] : dedup) out.push_back(std::move(q));
  std::sort(out.begin(), out.end(), [](const AQuestion& a, const AQuestion& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    if (a.value_a != b.value_a) return a.value_a < b.value_a;
    return a.value_b < b.value_b;
  });
  if (out.size() > options.max_questions) out.resize(options.max_questions);
  return out;
}

}  // namespace visclean
