// QuestionStore: the cross-iteration identity layer of the select stage.
//
// Each iteration the detect/train/generate stages produce a fresh
// QuestionSet; the store diffs it against the pools it kept from the
// previous iteration and exposes (a) the current pools keyed by question
// identity with stable ids, and (b) the per-iteration QuestionDelta —
// exactly which questions appeared, changed payload, or retired (answered,
// resolved on their own, or dropped by detection). The ErgCache consumes
// the delta to insert/retract graph elements instead of rebuilding the ERG
// from the whole table (see core/erg_cache.h and DESIGN.md §2.4).
//
// Question identity:
//   T: unordered row pair            A: (column, unordered spelling pair)
//   M: (row, column)                 O: (row, column)
// A question keeps its id while its key stays in the pool; payload changes
// (e.g. the EM probability of a T-question after a retrain) surface as
// `updated` entries, not retire/re-add churn.
#ifndef VISCLEAN_CLEAN_QUESTION_STORE_H_
#define VISCLEAN_CLEAN_QUESTION_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clean/question.h"

namespace visclean {

/// Identity keys (see file comment).
using TQuestionKey = std::pair<size_t, size_t>;  ///< rows, min first
using AQuestionKey =
    std::pair<size_t, std::pair<std::string, std::string>>;  ///< col + pair
using CellQuestionKey = std::pair<size_t, size_t>;           ///< (row, column)

TQuestionKey KeyOf(const TQuestion& q);
AQuestionKey KeyOf(const AQuestion& q);
CellQuestionKey KeyOf(const MQuestion& q);
CellQuestionKey KeyOf(const OQuestion& q);

/// \brief A pooled question: stable id + current payload.
template <typename Q>
struct StoredQuestion {
  uint64_t id = 0;  ///< assigned at first ingest, kept while the key lives
  Q question;
};

/// \brief What changed between two consecutive Ingest calls.
struct QuestionDelta {
  std::vector<TQuestion> t_added, t_updated;
  std::vector<TQuestionKey> t_removed;
  std::vector<AQuestion> a_added, a_updated;
  std::vector<AQuestionKey> a_removed;
  std::vector<MQuestion> m_added, m_updated;
  std::vector<CellQuestionKey> m_removed;
  std::vector<OQuestion> o_added, o_updated;
  std::vector<CellQuestionKey> o_removed;

  bool Empty() const;
  /// Total number of delta entries across all kinds.
  size_t TotalSize() const;
  void Clear();
};

/// \brief Durable image of a QuestionStore: pool entries in key order (keys
/// are re-derived via KeyOf on restore) plus the id/generation counters.
/// This is the serialization surface session snapshots persist.
struct QuestionStoreSnapshot {
  std::vector<StoredQuestion<TQuestion>> t;
  std::vector<StoredQuestion<AQuestion>> a;
  std::vector<StoredQuestion<MQuestion>> m;
  std::vector<StoredQuestion<OQuestion>> o;
  uint64_t next_id = 1;
  uint64_t generation = 0;
};

/// \brief Owns the per-type question pools across iterations.
class QuestionStore {
 public:
  template <typename Q>
  using Pool = std::map<decltype(KeyOf(std::declval<Q>())), StoredQuestion<Q>>;

  /// Replaces the pools with `current` (first occurrence of a key wins —
  /// duplicate questions in the incoming set collapse here) and returns the
  /// delta against the previous pools. The delta stays valid until the next
  /// Ingest/Clear.
  const QuestionDelta& Ingest(const QuestionSet& current);

  const Pool<TQuestion>& t_pool() const { return t_pool_; }
  const Pool<AQuestion>& a_pool() const { return a_pool_; }
  const Pool<MQuestion>& m_pool() const { return m_pool_; }
  const Pool<OQuestion>& o_pool() const { return o_pool_; }

  const QuestionDelta& last_delta() const { return delta_; }

  size_t TotalSize() const {
    return t_pool_.size() + a_pool_.size() + m_pool_.size() + o_pool_.size();
  }

  /// Number of Ingest calls so far.
  uint64_t generation() const { return generation_; }
  /// Total stable ids ever assigned (ids are never reused).
  uint64_t ids_assigned() const { return next_id_ - 1; }

  /// Drops pools and delta; ids keep counting (stability across Clear is
  /// not promised, id uniqueness is).
  void Clear();

  /// The store's durable image (see QuestionStoreSnapshot). The last delta
  /// is deliberately excluded: it only describes the transition into the
  /// current pools, and every delta consumer rebuilds from scratch after a
  /// restore anyway.
  QuestionStoreSnapshot Snapshot() const;

  /// Replaces pools and counters with a Snapshot() image; the delta resets
  /// to empty. Ids resume counting from the snapshot's next_id.
  void Restore(const QuestionStoreSnapshot& snapshot);

 private:
  template <typename Q>
  void IngestPool(const std::vector<Q>& current, Pool<Q>* pool,
                  std::vector<Q>* added, std::vector<Q>* updated,
                  std::vector<decltype(KeyOf(std::declval<Q>()))>* removed);

  Pool<TQuestion> t_pool_;
  Pool<AQuestion> a_pool_;
  Pool<MQuestion> m_pool_;
  Pool<OQuestion> o_pool_;
  QuestionDelta delta_;
  uint64_t next_id_ = 1;
  uint64_t generation_ = 0;
};

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_QUESTION_STORE_H_
