#include "clean/outlier_detector.h"

#include <algorithm>
#include <set>
#include <string>

#include "ml/knn.h"
#include "text/tokenize.h"

namespace visclean {

namespace {

std::string RowAsString(const Table& table, size_t row) {
  std::string out;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) out += ' ';
    out += table.at(row, c).ToDisplayString();
  }
  return out;
}

}  // namespace

std::vector<OQuestion> DetectOutliers(const Table& table, size_t column,
                                      const OutlierDetectorOptions& options) {
  std::vector<size_t> rows;
  std::vector<double> values;
  for (size_t r : table.LiveRowIds()) {
    const Value& v = table.at(r, column);
    if (v.is_null()) continue;
    rows.push_back(r);
    values.push_back(v.ToNumberOr(0.0));
  }
  if (values.size() < 3) return {};

  // Clamp k for tiny columns: with k close to n every score degenerates to
  // the diameter of the value set and nothing stands out.
  size_t k = std::min(options.k, std::max<size_t>(1, (values.size() - 1) / 2));
  std::vector<double> scores = KnnOutlierScores(values, k);

  // Median score as the normal-spread reference.
  std::vector<double> sorted_scores = scores;
  std::nth_element(sorted_scores.begin(),
                   sorted_scores.begin() + sorted_scores.size() / 2,
                   sorted_scores.end());
  double median = sorted_scores[sorted_scores.size() / 2];
  double cutoff = median > 0 ? median * options.score_ratio : 0.0;

  // Rank candidate indices by score descending.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return rows[a] < rows[b];
  });

  // Row token sets for repair suggestions (computed lazily only if needed).
  std::vector<std::set<std::string>> row_tokens;
  auto ensure_row_tokens = [&]() {
    if (!row_tokens.empty()) return;
    row_tokens.reserve(rows.size());
    for (size_t r : rows) {
      row_tokens.push_back(TokenSet(WordTokens(RowAsString(table, r))));
    }
  };

  std::vector<OQuestion> out;
  for (size_t i : order) {
    if (out.size() >= options.max_questions) break;
    if (scores[i] <= cutoff || scores[i] <= 0.0) break;
    ensure_row_tokens();
    std::vector<Neighbor> neighbors = NearestNeighborsByTokens(
        row_tokens, row_tokens[i], options.impute_k,
        static_cast<ptrdiff_t>(i));
    double nsum = 0.0;
    size_t nused = 0;
    for (const Neighbor& nb : neighbors) {
      nsum += values[nb.index];
      ++nused;
    }
    OQuestion q;
    q.row = rows[i];
    q.column = column;
    q.current = values[i];
    q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : values[i];
    q.score = scores[i];
    out.push_back(q);
  }
  return out;
}

}  // namespace visclean
