#include "clean/outlier_detector.h"

#include <algorithm>
#include <set>
#include <string>

#include "clean/detector.h"
#include "ml/knn.h"
#include "text/tokenize.h"

namespace visclean {

std::vector<OQuestion> DetectOutliers(const Table& table, size_t column,
                                      const OutlierDetectorOptions& options) {
  std::vector<size_t> rows;
  std::vector<double> values;
  for (size_t r : table.LiveRowIds()) {
    const Value& v = table.at(r, column);
    if (v.is_null()) continue;
    rows.push_back(r);
    values.push_back(v.ToNumberOr(0.0));
  }
  if (values.size() < 3) return {};

  // Clamp k for tiny columns: with k close to n every score degenerates to
  // the diameter of the value set and nothing stands out.
  size_t k = std::min(options.k, std::max<size_t>(1, (values.size() - 1) / 2));
  std::vector<double> scores = KnnOutlierScores(values, k);

  // Median score as the normal-spread reference.
  std::vector<double> sorted_scores = scores;
  std::nth_element(sorted_scores.begin(),
                   sorted_scores.begin() + sorted_scores.size() / 2,
                   sorted_scores.end());
  double median = sorted_scores[sorted_scores.size() / 2];
  double cutoff = median > 0 ? median * options.score_ratio : 0.0;

  // Rank candidate indices by score descending.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return rows[a] < rows[b];
  });

  // Row token sets for repair suggestions (computed lazily only if needed).
  std::vector<std::set<std::string>> row_tokens;
  auto ensure_row_tokens = [&]() {
    if (!row_tokens.empty()) return;
    row_tokens.reserve(rows.size());
    for (size_t r : rows) {
      row_tokens.push_back(TokenSet(WordTokens(RowAsString(table, r))));
    }
  };

  std::vector<OQuestion> out;
  for (size_t i : order) {
    if (out.size() >= options.max_questions) break;
    if (scores[i] <= cutoff || scores[i] <= 0.0) break;
    ensure_row_tokens();
    std::vector<Neighbor> neighbors = NearestNeighborsByTokens(
        row_tokens, row_tokens[i], options.impute_k,
        static_cast<ptrdiff_t>(i));
    double nsum = 0.0;
    size_t nused = 0;
    for (const Neighbor& nb : neighbors) {
      nsum += values[nb.index];
      ++nused;
    }
    OQuestion q;
    q.row = rows[i];
    q.column = column;
    q.current = values[i];
    q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : values[i];
    q.score = scores[i];
    out.push_back(q);
  }
  return out;
}

// ---------------------------------------------------------- OutlierDetector

void OutlierDetector::Configure(size_t column,
                                const OutlierDetectorOptions& options,
                                RowTokenCache* tokens) {
  if (column != column_ || options.k != options_.k ||
      options.max_questions != options_.max_questions ||
      options.score_ratio != options_.score_ratio ||
      options.impute_k != options_.impute_k) {
    knn_.Clear();
    questions_.clear();
  }
  column_ = column;
  options_ = options;
  tokens_ = tokens;
}

void OutlierDetector::FullScan(const Table& table, const KernelEnv& env) {
  knn_.Clear();
  Generate(table, env);
}

void OutlierDetector::Update(const Table& table,
                             const std::vector<size_t>& mutated_rows,
                             const KernelEnv& env) {
  knn_.BeginEpoch(mutated_rows);
  Generate(table, env);
}

void OutlierDetector::Generate(const Table& table, const KernelEnv& env) {
  std::vector<OQuestion> previous = std::move(questions_);
  questions_.clear();

  // Same global pass as DetectOutliers: scores, median cutoff, ranking.
  std::vector<size_t> rows;
  std::vector<double> values;
  for (size_t r : table.LiveRowIds()) {
    const Value& v = table.at(r, column_);
    if (v.is_null()) continue;
    rows.push_back(r);
    values.push_back(v.ToNumberOr(0.0));
  }
  if (values.size() >= 3) {
    size_t k =
        std::min(options_.k, std::max<size_t>(1, (values.size() - 1) / 2));
    std::vector<double> scores = KnnOutlierScores(values, k);

    std::vector<double> sorted_scores = scores;
    std::nth_element(sorted_scores.begin(),
                     sorted_scores.begin() + sorted_scores.size() / 2,
                     sorted_scores.end());
    double median = sorted_scores[sorted_scores.size() / 2];
    double cutoff = median > 0 ? median * options_.score_ratio : 0.0;

    std::vector<size_t> order(values.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return rows[a] < rows[b];
    });

    // The walk's break conditions depend only on the scores, so the asked
    // rows are known before any kNN runs — batch their suggestions.
    std::vector<size_t> asked;  // positions into rows/values
    for (size_t i : order) {
      if (asked.size() >= options_.max_questions) break;
      if (scores[i] <= cutoff || scores[i] <= 0.0) break;
      asked.push_back(i);
    }

    if (!asked.empty()) {
      // Corpus = the non-null live rows (ascending ids), shared token cache.
      tokens_->Ensure(table, rows, env);
      std::vector<const std::set<std::string>*> corpus_tokens;
      corpus_tokens.reserve(rows.size());
      for (size_t r : rows) corpus_tokens.push_back(&tokens_->tokens(r));

      std::vector<size_t> query_rows;
      query_rows.reserve(asked.size());
      for (size_t i : asked) query_rows.push_back(rows[i]);
      std::vector<std::vector<Neighbor>> neighbor_lists = knn_.BatchQuery(
          query_rows, options_.impute_k, rows, corpus_tokens, env);

      for (size_t qi = 0; qi < asked.size(); ++qi) {
        size_t i = asked[qi];
        double nsum = 0.0;
        size_t nused = 0;
        for (const Neighbor& nb : neighbor_lists[qi]) {
          size_t pos = static_cast<size_t>(
              std::lower_bound(rows.begin(), rows.end(), nb.index) -
              rows.begin());
          nsum += values[pos];
          ++nused;
        }
        OQuestion q;
        q.row = rows[i];
        q.column = column_;
        q.current = values[i];
        q.suggested = nused > 0 ? nsum / static_cast<double>(nused) : values[i];
        q.score = scores[i];
        questions_.push_back(q);
      }
    }
  }

  auto same = [](const OQuestion& a, const OQuestion& b) {
    return a.row == b.row && a.column == b.column && a.current == b.current &&
           a.suggested == b.suggested && a.score == b.score;
  };
  added_.clear();
  retracted_.clear();
  for (const OQuestion& q : questions_) {
    bool found = false;
    for (const OQuestion& p : previous) {
      if (same(p, q)) {
        found = true;
        break;
      }
    }
    if (!found) added_.push_back(q);
  }
  for (const OQuestion& p : previous) {
    bool found = false;
    for (const OQuestion& q : questions_) {
      if (same(p, q)) {
        found = true;
        break;
      }
    }
    if (!found) retracted_.push_back(p);
  }
}

}  // namespace visclean
