#include "clean/question_store.h"

#include <algorithm>

namespace visclean {

namespace {

// Payload equality per kind, exact down to float bits: an `updated` delta
// entry fires iff something observable about the question changed.
bool SamePayload(const TQuestion& a, const TQuestion& b) {
  return a.probability == b.probability;
}
bool SamePayload(const AQuestion& a, const AQuestion& b) {
  return a.value_a == b.value_a && a.value_b == b.value_b &&
         a.similarity == b.similarity;
}
bool SamePayload(const MQuestion& a, const MQuestion& b) {
  return a.suggested == b.suggested;
}
bool SamePayload(const OQuestion& a, const OQuestion& b) {
  return a.current == b.current && a.suggested == b.suggested &&
         a.score == b.score;
}

}  // namespace

TQuestionKey KeyOf(const TQuestion& q) {
  return std::minmax(q.row_a, q.row_b);
}

AQuestionKey KeyOf(const AQuestion& q) {
  return {q.column, std::minmax(q.value_a, q.value_b)};
}

CellQuestionKey KeyOf(const MQuestion& q) { return {q.row, q.column}; }

CellQuestionKey KeyOf(const OQuestion& q) { return {q.row, q.column}; }

bool QuestionDelta::Empty() const { return TotalSize() == 0; }

size_t QuestionDelta::TotalSize() const {
  return t_added.size() + t_updated.size() + t_removed.size() +
         a_added.size() + a_updated.size() + a_removed.size() +
         m_added.size() + m_updated.size() + m_removed.size() +
         o_added.size() + o_updated.size() + o_removed.size();
}

void QuestionDelta::Clear() { *this = QuestionDelta(); }

template <typename Q>
void QuestionStore::IngestPool(
    const std::vector<Q>& current, Pool<Q>* pool, std::vector<Q>* added,
    std::vector<Q>* updated,
    std::vector<decltype(KeyOf(std::declval<Q>()))>* removed) {
  Pool<Q> next;
  for (const Q& q : current) {
    auto key = KeyOf(q);
    if (next.count(key)) continue;  // duplicate in the incoming set
    auto it = pool->find(key);
    if (it == pool->end()) {
      next.emplace(key, StoredQuestion<Q>{next_id_++, q});
      added->push_back(q);
    } else {
      if (!SamePayload(it->second.question, q)) updated->push_back(q);
      next.emplace(key, StoredQuestion<Q>{it->second.id, q});
    }
  }
  for (const auto& [key, stored] : *pool) {
    if (!next.count(key)) removed->push_back(key);
  }
  *pool = std::move(next);
}

const QuestionDelta& QuestionStore::Ingest(const QuestionSet& current) {
  delta_.Clear();
  IngestPool(current.t_questions, &t_pool_, &delta_.t_added, &delta_.t_updated,
             &delta_.t_removed);
  IngestPool(current.a_questions, &a_pool_, &delta_.a_added, &delta_.a_updated,
             &delta_.a_removed);
  IngestPool(current.m_questions, &m_pool_, &delta_.m_added, &delta_.m_updated,
             &delta_.m_removed);
  IngestPool(current.o_questions, &o_pool_, &delta_.o_added, &delta_.o_updated,
             &delta_.o_removed);
  ++generation_;
  return delta_;
}

void QuestionStore::Clear() {
  t_pool_.clear();
  a_pool_.clear();
  m_pool_.clear();
  o_pool_.clear();
  delta_.Clear();
  generation_ = 0;
}

namespace {

template <typename Q>
std::vector<StoredQuestion<Q>> FlattenPool(
    const QuestionStore::Pool<Q>& pool) {
  std::vector<StoredQuestion<Q>> out;
  out.reserve(pool.size());
  for (const auto& [key, stored] : pool) out.push_back(stored);
  return out;
}

template <typename Q>
QuestionStore::Pool<Q> RebuildPool(const std::vector<StoredQuestion<Q>>& flat) {
  QuestionStore::Pool<Q> pool;
  for (const StoredQuestion<Q>& stored : flat) {
    pool.emplace(KeyOf(stored.question), stored);
  }
  return pool;
}

}  // namespace

QuestionStoreSnapshot QuestionStore::Snapshot() const {
  QuestionStoreSnapshot snapshot;
  snapshot.t = FlattenPool(t_pool_);
  snapshot.a = FlattenPool(a_pool_);
  snapshot.m = FlattenPool(m_pool_);
  snapshot.o = FlattenPool(o_pool_);
  snapshot.next_id = next_id_;
  snapshot.generation = generation_;
  return snapshot;
}

void QuestionStore::Restore(const QuestionStoreSnapshot& snapshot) {
  t_pool_ = RebuildPool(snapshot.t);
  a_pool_ = RebuildPool(snapshot.a);
  m_pool_ = RebuildPool(snapshot.m);
  o_pool_ = RebuildPool(snapshot.o);
  delta_.Clear();
  next_id_ = snapshot.next_id;
  generation_ = snapshot.generation;
}

}  // namespace visclean
