// The four kinds of data-cleaning questions of Section II-D, plus the
// repairing-candidate set Q = Q_T ∪ Q_A ∪ Q_M ∪ Q_O produced each
// iteration (Section IV).
#ifndef VISCLEAN_CLEAN_QUESTION_H_
#define VISCLEAN_CLEAN_QUESTION_H_

#include <string>
#include <vector>

namespace visclean {

/// "Are tuples a and b the same entity?" — from EM active learning.
struct TQuestion {
  size_t row_a = 0;
  size_t row_b = 0;
  double probability = 0.5;  ///< EM model's match probability (P^Y)
};

/// "Are spellings value_a and value_b the same attribute-level entity?
/// If so, standardize on canonical." — from Algorithm 1.
struct AQuestion {
  size_t column = 0;
  std::string value_a;    ///< variant spelling
  std::string value_b;    ///< proposed canonical spelling
  double similarity = 0;  ///< similarity score used as approval probability
};

/// "Tuple `row` is missing `column`; take `suggested`?" — kNN imputation.
struct MQuestion {
  size_t row = 0;
  size_t column = 0;
  double suggested = 0.0;  ///< mean Y of the k string-nearest neighbors
};

/// "Is `current` in tuple `row` an outlier; if so repair to `suggested`?"
struct OQuestion {
  size_t row = 0;
  size_t column = 0;
  double current = 0.0;
  double suggested = 0.0;
  double score = 0.0;  ///< kNN outlier score (higher = more isolated)
};

/// \brief The full repairing-candidate set of one iteration.
struct QuestionSet {
  std::vector<TQuestion> t_questions;
  std::vector<AQuestion> a_questions;
  std::vector<MQuestion> m_questions;
  std::vector<OQuestion> o_questions;

  size_t TotalSize() const {
    return t_questions.size() + a_questions.size() + m_questions.size() +
           o_questions.size();
  }
};

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_QUESTION_H_
