#include "clean/detector.h"

#include <utility>

#include "common/thread_pool.h"
#include "text/tokenize.h"

namespace visclean {

std::string RowAsString(const Table& table, size_t row) {
  std::string out;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) out += ' ';
    out += table.at(row, c).ToDisplayString();
  }
  return out;
}

void RowTokenCache::Invalidate(const std::vector<size_t>& dirty_rows) {
  for (size_t r : dirty_rows) tokens_.erase(r);
}

void RowTokenCache::Ensure(const Table& table, const std::vector<size_t>& rows,
                           const KernelEnv& env) {
  std::vector<size_t> missing;
  for (size_t r : rows) {
    if (tokens_.find(r) == tokens_.end()) missing.push_back(r);
  }
  if (missing.empty()) return;

  // Tokenization is a pure chunk kernel with indexed writes; it rides the
  // kNN queue (same consumers, same fairness domain) when batched.
  std::vector<std::set<std::string>> computed(missing.size());
  const size_t min_parallel =
      env.pool != nullptr ? 2 * env.pool->num_threads() : 2;
  RunKernel(KernelKind::kKnnQuery, env, missing.size(), min_parallel,
            [&](size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) {
                computed[i] =
                    TokenSet(WordTokens(RowAsString(table, missing[i])));
              }
            });
  for (size_t i = 0; i < missing.size(); ++i) {
    tokens_[missing[i]] = std::move(computed[i]);
  }
}

}  // namespace visclean
