// Q_M generation: kNN imputation for missing values (Section IV).
#ifndef VISCLEAN_CLEAN_MISSING_DETECTOR_H_
#define VISCLEAN_CLEAN_MISSING_DETECTOR_H_

#include <vector>

#include "clean/detector.h"
#include "clean/question.h"
#include "data/table.h"
#include "ml/knn.h"

namespace visclean {

class ThreadPool;

/// \brief Options for missing-value detection.
struct MissingDetectorOptions {
  size_t k = 5;  ///< neighbors averaged for the suggested imputation
  /// Cap on questions per call (0 = unlimited). Each suggestion costs a
  /// full kNN scan, so sessions cap this per iteration; repaired cells
  /// drop out, so later iterations reach the remainder.
  size_t max_questions = 0;
};

/// \brief One M-question per live row whose `column` cell is null.
///
/// The suggestion follows the paper exactly: concatenate all attributes of
/// each tuple into a string, rank other tuples by Jaccard similarity, and
/// average the `column` values of the k nearest neighbors that have one.
/// Rows where no neighbor has a value get suggestion = column mean.
std::vector<MQuestion> DetectMissing(const Table& table, size_t column,
                                     const MissingDetectorOptions& options = {});

/// \brief Incremental M-question detector behind the Detector interface.
///
/// The cheap parts of DetectMissing (null scan, column mean) are recomputed
/// every scan; the expensive parts — per-row token sets and per-query kNN
/// neighbor lists over all live rows — live in caches invalidated only for
/// dirty rows. questions() is bit-identical to DetectMissing on the current
/// table after either FullScan or Update.
class MissingDetector : public Detector {
 public:
  /// Binds the target column, options, and the shared token cache (owned by
  /// DetectionCache; tokens are shared with the outlier detector).
  void Configure(size_t column, const MissingDetectorOptions& options,
                 RowTokenCache* tokens);

  void FullScan(const Table& table, const KernelEnv& env) override;
  void Update(const Table& table, const std::vector<size_t>& mutated_rows,
              const KernelEnv& env) override;
  using Detector::FullScan;
  using Detector::Update;

  const std::vector<MQuestion>& questions() const { return questions_; }
  /// Questions that (dis)appeared in the last scan, in question order.
  const std::vector<MQuestion>& added() const { return added_; }
  const std::vector<MQuestion>& retracted() const { return retracted_; }

  const TokenKnnCache& knn() const { return knn_; }

 private:
  void Generate(const Table& table, const KernelEnv& env);

  size_t column_ = 0;
  MissingDetectorOptions options_;
  RowTokenCache* tokens_ = nullptr;
  TokenKnnCache knn_;
  std::vector<MQuestion> questions_, added_, retracted_;
};

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_MISSING_DETECTOR_H_
