// Q_M generation: kNN imputation for missing values (Section IV).
#ifndef VISCLEAN_CLEAN_MISSING_DETECTOR_H_
#define VISCLEAN_CLEAN_MISSING_DETECTOR_H_

#include <vector>

#include "clean/question.h"
#include "data/table.h"

namespace visclean {

/// \brief Options for missing-value detection.
struct MissingDetectorOptions {
  size_t k = 5;  ///< neighbors averaged for the suggested imputation
  /// Cap on questions per call (0 = unlimited). Each suggestion costs a
  /// full kNN scan, so sessions cap this per iteration; repaired cells
  /// drop out, so later iterations reach the remainder.
  size_t max_questions = 0;
};

/// \brief One M-question per live row whose `column` cell is null.
///
/// The suggestion follows the paper exactly: concatenate all attributes of
/// each tuple into a string, rank other tuples by Jaccard similarity, and
/// average the `column` values of the k nearest neighbors that have one.
/// Rows where no neighbor has a value get suggestion = column mean.
std::vector<MQuestion> DetectMissing(const Table& table, size_t column,
                                     const MissingDetectorOptions& options = {});

}  // namespace visclean

#endif  // VISCLEAN_CLEAN_MISSING_DETECTOR_H_
